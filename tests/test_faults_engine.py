"""Behavioral tests for fault injection: crash/restart, churn, partitions,
degraded links, and the graceful-degradation accounting."""

import dataclasses
import random

import pytest

from repro import units
from repro.config import smoke_config
from repro.experiments.world import build_world
from repro.sim.network import LinkProperties, Network, Node


def faulted_world(fault_plan, sim_overrides=None, **build_kwargs):
    protocol, sim = smoke_config()
    if sim_overrides:
        sim = dataclasses.replace(sim, **sim_overrides)
    return build_world(protocol, sim, fault_plan=fault_plan, **build_kwargs)


class TestEngineWiring:
    def test_noop_plan_attaches_no_engine(self):
        world = faulted_world({"crash": {"rate_per_peer_per_year": 0.0}})
        assert world.fault_engine is None

    def test_active_plan_attaches_an_engine(self):
        world = faulted_world({"crash": {"rate_per_peer_per_year": 4.0}})
        assert world.fault_engine is not None

    def test_extras_expose_every_counter(self):
        world = faulted_world({"crash": {"rate_per_peer_per_year": 4.0}})
        metrics = world.run()
        for key in (
            "fault_crashes",
            "fault_restarts",
            "fault_churn_leaves",
            "fault_churn_rejoins",
            "fault_downtime_days",
            "fault_availability",
            "fault_damage_while_down",
            "fault_partition_windows",
            "fault_partition_dropped",
            "fault_degraded_windows",
            "fault_recoveries",
            "fault_mean_recovery_days",
            "fault_recovery_repairs",
        ):
            assert key in metrics.extras, key


class TestCrashRestart:
    def test_crashes_happen_and_peers_come_back(self):
        world = faulted_world(
            {"crash": {"rate_per_peer_per_year": 6.0, "mean_downtime_days": 2.0}}
        )
        metrics = world.run()
        engine = world.fault_engine
        assert engine.crashes > 0
        assert engine.restarts > 0
        assert metrics.extras["fault_availability"] < 1.0
        assert metrics.extras["fault_downtime_days"] > 0.0
        # Every completed outage is crash-then-restart; at most one
        # still-down peer per covered peer at run end.
        assert engine.crashes - engine.restarts <= len(world.peers)

    def test_crashed_peer_stops_polling_and_voting(self):
        world = faulted_world(None)
        world.start()
        world.simulator.run(units.days(30))
        peer = world.peers[0]
        peer.crash()
        assert not peer.active
        assert peer.active_polls() == 0
        assert peer.active_voter_sessions() == 0

    def test_restart_rekicks_broken_poll_chains(self):
        world = faulted_world(None)
        world.start()
        world.simulator.run(units.days(30))
        peer = world.peers[0]
        peer.crash()
        # The outage breaks each AU's poll chain as its timer fires.
        world.simulator.run(world.simulator.now + units.days(120))
        assert peer._broken_chains
        peer.restart(random.Random(7))
        assert not peer._broken_chains
        def total_polls(collector):
            return (
                collector.successful_polls
                + collector.failed_polls
                + collector.inconclusive_polls
            )
        before = total_polls(world.collector)
        world.simulator.run(world.simulator.now + units.days(120))
        assert total_polls(world.collector) > before

    def test_restart_with_replica_loss_damages_every_block(self):
        world = faulted_world(None)
        world.start()
        peer = world.peers[0]
        peer.crash()
        peer.restart(random.Random(7), lose_replicas=True)
        for au in world.aus:
            replica = peer.au_state(au.au_id).replica
            assert len(replica.damage_tags) == replica.au.n_blocks

    def test_restart_with_reference_list_loss_keeps_friends(self):
        world = faulted_world(None)
        world.start()
        peer = world.peers[0]
        state = peer.au_state(world.aus[0].au_id)
        friends = set(state.reference_list.friends)
        assert len(state.reference_list) > 0
        peer.crash()
        peer.restart(random.Random(7), lose_reference_lists=True)
        assert len(state.reference_list) == 0
        assert set(state.reference_list.friends) == friends

    def test_bit_rot_keeps_striking_while_down(self):
        # Brutal bit rot (tiny MTBF) plus long outages: the damage delta
        # accrued during downtime must be accounted as damage-while-down.
        world = faulted_world(
            {"crash": {"rate_per_peer_per_year": 12.0, "mean_downtime_days": 30.0}},
            sim_overrides={"storage_mtbf_disk_years": 0.02},
        )
        metrics = world.run()
        assert world.failure_model.events_injected > 0
        assert metrics.extras["fault_damage_while_down"] > 0.0


class TestChurn:
    def test_churn_loses_state_and_rejoins(self):
        world = faulted_world(
            {"churn": {"rate_per_peer_per_year": 8.0, "mean_downtime_days": 10.0}}
        )
        metrics = world.run()
        engine = world.fault_engine
        assert engine.churn_leaves > 0
        assert engine.churn_rejoins > 0
        assert metrics.extras["fault_churn_rejoins"] <= metrics.extras[
            "fault_churn_leaves"
        ]

    def test_coverage_limits_the_churned_subset(self):
        world = faulted_world(
            {
                "churn": {
                    "rate_per_peer_per_year": 50.0,
                    "mean_downtime_days": 1.0,
                    "coverage": 0.3,
                }
            }
        )
        world.start()
        engine = world.fault_engine
        covered = engine._eligible("churn", 0.3)
        assert len(covered) == round(0.3 * len(world.peers))

    def test_recovery_metrics_flow_after_rejoin(self):
        world = faulted_world(
            {"churn": {"rate_per_peer_per_year": 4.0, "mean_downtime_days": 2.0}}
        )
        metrics = world.run()
        engine = world.fault_engine
        if engine.recoveries:
            assert metrics.extras["fault_mean_recovery_days"] > 0.0


class RecordingNode(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def receive_message(self, message):
        self.received.append(message)


@pytest.fixture
def three_nodes(simulator, streams):
    network = Network(simulator, streams)
    nodes = []
    for name in ("a", "b", "c"):
        node = RecordingNode(name)
        network.register(
            node, LinkProperties(bandwidth_bps=units.mbps(10), latency=0.010)
        )
        nodes.append(node)
    return network, nodes


class TestPartition:
    def test_cross_group_send_is_dropped(self, simulator, three_nodes):
        network, (a, b, c) = three_nodes
        network.set_partition({"b": 1})
        assert network.send("a", "b", "x", 10) is False
        assert network.stats.messages_dropped_partition == 1
        simulator.run(1.0)
        assert b.received == []

    def test_same_group_delivery_still_works(self, simulator, three_nodes):
        network, (a, b, c) = three_nodes
        network.set_partition({"b": 1})
        assert network.send("a", "c", "x", 10) is True
        simulator.run(1.0)
        assert len(c.received) == 1

    def test_in_flight_messages_are_dropped_at_delivery(self, simulator, three_nodes):
        network, (a, b, c) = three_nodes
        assert network.send("a", "b", "x", 10) is True
        network.set_partition({"b": 1})
        simulator.run(1.0)
        assert b.received == []
        assert network.stats.messages_dropped_partition == 1

    def test_clear_partition_restores_reachability(self, simulator, three_nodes):
        network, (a, b, c) = three_nodes
        network.set_partition({"b": 1})
        network.clear_partition()
        assert not network.is_partitioned()
        assert network.send("a", "b", "x", 10) is True
        simulator.run(1.0)
        assert len(b.received) == 1

    def test_partition_window_drops_messages_in_a_run(self):
        world = faulted_world(
            {
                "partitions": [
                    {"start_day": 30.0, "duration_days": 30.0, "fraction": 0.5}
                ]
            }
        )
        metrics = world.run()
        assert metrics.extras["fault_partition_windows"] == 1.0
        assert metrics.extras["fault_partition_dropped"] > 0.0
        # The window ended: the network must be whole again at run end.
        assert not world.network.is_partitioned()


class TestDegradedLinks:
    def test_factors_scale_the_original_link(self, three_nodes):
        network, _ = three_nodes
        original = network.link_for("a")
        degraded = network.degrade_link("a", bandwidth_factor=0.5, latency_factor=2.0)
        assert degraded.bandwidth_bps == pytest.approx(original.bandwidth_bps * 0.5)
        assert degraded.latency == pytest.approx(original.latency * 2.0)

    def test_repeated_degrade_does_not_compound(self, three_nodes):
        network, _ = three_nodes
        original = network.link_for("a")
        network.degrade_link("a", bandwidth_factor=0.5)
        again = network.degrade_link("a", bandwidth_factor=0.5)
        assert again.bandwidth_bps == pytest.approx(original.bandwidth_bps * 0.5)

    def test_restore_brings_back_the_original_link(self, three_nodes):
        network, _ = three_nodes
        original = network.link_for("a")
        network.degrade_link("a", bandwidth_factor=0.1, latency_factor=10.0)
        network.restore_link("a")
        assert network.link_for("a") is original
        # Restoring an undegraded identity is a no-op.
        network.restore_link("c")

    def test_unknown_identity_is_rejected(self, three_nodes):
        network, _ = three_nodes
        with pytest.raises(ValueError):
            network.degrade_link("ghost", bandwidth_factor=0.5)

    def test_degrade_window_slows_polls_in_a_run(self):
        world = faulted_world(
            {
                "degraded_links": [
                    {
                        "start_day": 0.0,
                        "duration_days": 60.0,
                        "fraction": 0.5,
                        "bandwidth_factor": 0.01,
                        "latency_factor": 50.0,
                    }
                ]
            }
        )
        metrics = world.run()
        assert metrics.extras["fault_degraded_windows"] == 1.0
        # The window is over; every link must be restored.
        assert not world.network._degraded
