"""Unit tests for repro.units."""

import pytest

from repro import units


class TestTimeConstants:
    def test_minute_hour_day_relations(self):
        assert units.MINUTE == 60 * units.SECOND
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR
        assert units.WEEK == 7 * units.DAY

    def test_month_is_thirty_days(self):
        assert units.MONTH == 30 * units.DAY

    def test_year_is_365_days(self):
        assert units.YEAR == 365 * units.DAY

    def test_months_helper(self):
        assert units.months(3) == 3 * units.MONTH

    def test_days_helper(self):
        assert units.days(1.5) == pytest.approx(1.5 * units.DAY)

    def test_years_helper(self):
        assert units.years(2) == 2 * units.YEAR


class TestSizesAndBandwidth:
    def test_size_constants(self):
        assert units.KB == 1024
        assert units.MB == 1024 * 1024
        assert units.GB == 1024 ** 3

    def test_mbps_helper(self):
        assert units.mbps(1.5) == pytest.approx(1.5e6)


class TestTransmissionTime:
    def test_one_megabyte_over_8mbps_takes_one_second(self):
        assert units.transmission_time(1_000_000, 8_000_000) == pytest.approx(1.0)

    def test_zero_bytes_takes_zero_time(self):
        assert units.transmission_time(0, units.mbps(10)) == 0.0

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0)
        with pytest.raises(ValueError):
            units.transmission_time(100, -5)

    def test_faster_link_is_faster(self):
        slow = units.transmission_time(units.MB, units.mbps(1.5))
        fast = units.transmission_time(units.MB, units.mbps(100))
        assert fast < slow


class TestFormatting:
    def test_format_duration_picks_natural_unit(self):
        assert units.format_duration(30) == "30.0s"
        assert units.format_duration(120) == "2.0m"
        assert units.format_duration(2 * units.HOUR) == "2.0h"
        assert units.format_duration(3 * units.DAY) == "3.0d"
        assert units.format_duration(2 * units.YEAR) == "2.0y"

    def test_format_size_picks_natural_unit(self):
        assert units.format_size(512) == "512B"
        assert units.format_size(2 * units.KB) == "2.0KB"
        assert units.format_size(3 * units.MB) == "3.0MB"
        assert units.format_size(units.GB) == "1.0GB"
