"""Event-bus semantics: typed topics, ring backpressure, accounted drops."""

import pytest

from repro.telemetry import DEFAULT_CAPACITY, TOPICS, EventBus


class TestTopics:
    def test_catalog_is_the_documented_eight(self):
        assert TOPICS == (
            "poll",
            "admission",
            "damage",
            "adversary_window",
            "fault",
            "run_lifecycle",
            "campaign_progress",
            "worker_liveness",
        )

    def test_subscribe_unknown_topic_raises(self):
        with pytest.raises(ValueError, match="unknown topic"):
            EventBus().subscribe(topics=["polls"])

    def test_publish_unknown_topic_raises(self):
        with pytest.raises(ValueError, match="unknown topic"):
            EventBus().publish("no_such_topic", {})

    def test_publish_without_subscribers_is_a_cheap_no_op(self):
        bus = EventBus()
        assert bus.publish("poll", ["poll", 0.0]) == 0
        assert bus.published == 0  # the fast path never built an event


class TestDelivery:
    def test_events_carry_seq_topic_data_and_optional_run(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish("poll", ["poll", 1.0], run="abc123")
        bus.publish("fault", ["fault", 2.0, "peer-0001", "crash"])
        first, second = sub.drain()
        assert first == {"seq": 1, "topic": "poll", "data": ["poll", 1.0], "run": "abc123"}
        assert second["seq"] == 2
        assert "run" not in second

    def test_topic_filter_only_delivers_selected_topics(self):
        bus = EventBus()
        sub = bus.subscribe(topics=["fault"])
        bus.publish("fault", ["fault", 0.0, "x", "crash"])
        bus.publish("run_lifecycle", {"state": "started"})
        events = sub.drain()
        assert [event["topic"] for event in events] == ["fault"]

    def test_drain_max_events_pops_oldest_first(self):
        bus = EventBus()
        sub = bus.subscribe()
        for index in range(5):
            bus.publish("damage", ["dmg", float(index)])
        first = sub.drain(max_events=2)
        assert [event["seq"] for event in first] == [1, 2]
        assert sub.pending() == 3

    def test_close_detaches_subscription(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        assert bus.publish("poll", ["poll"]) == 0
        assert not bus.has_subscribers("poll")
        sub.close()  # idempotent


class TestBackpressure:
    def test_slow_subscriber_overflows_ring_and_counts_drops(self):
        bus = EventBus()
        slow = bus.subscribe(capacity=4)
        for index in range(10):
            bus.publish("damage", ["dmg", float(index)])
        assert slow.dropped == 6
        assert slow.delivered == 10
        # Drop-oldest: the survivors are the newest four.
        assert [event["seq"] for event in slow.drain()] == [7, 8, 9, 10]

    def test_fast_subscriber_is_unaffected_by_a_slow_one(self):
        bus = EventBus()
        slow = bus.subscribe(capacity=2)
        fast = bus.subscribe(capacity=1024)
        for index in range(50):
            bus.publish("damage", ["dmg", float(index)])
        assert slow.dropped == 48
        assert fast.dropped == 0
        assert len(fast.drain()) == 50

    def test_publisher_never_blocks_on_a_full_ring(self):
        bus = EventBus()
        sub = bus.subscribe(capacity=1)
        for index in range(100):
            assert bus.publish("poll", ["poll", float(index)]) == 1
        assert sub.dropped == 99

    def test_default_capacity(self):
        assert EventBus().subscribe().capacity == DEFAULT_CAPACITY
