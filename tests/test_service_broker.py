"""Broker lease protocol: expiry, double-lease safety, crash re-leasing,
and digest parity between a worker fleet and the single-process runner."""

import pytest

from repro import units
from repro.api import Campaign, CampaignRunner, ResultStore, Scenario, Session
from repro.api.campaign import status_dict
from repro.api.resultset import export_rows
from repro.experiments.bench import digest_rows
from repro.service import Broker, LocalBrokerClient, Worker
from repro.service.sqlite_store import SQLiteResultStore


def smoke_campaign(points=2):
    base = Scenario(
        name="broker test",
        base="smoke",
        sim={"duration": units.months(2)},
        seeds=(1,),
    )
    return Campaign.from_grid(
        "broker-smoke", base, {"sim.n_aus": list(range(1, points + 1))}
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def store(tmp_path):
    return SQLiteResultStore(tmp_path / "svc.db")


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(store, clock):
    return Broker(store, lease_seconds=10.0, clock=clock)


class TestSubmit:
    def test_requires_sqlite_store(self, tmp_path):
        with pytest.raises(TypeError):
            Broker(ResultStore(tmp_path))

    def test_submit_queues_points(self, broker):
        campaign = smoke_campaign(3)
        status = broker.submit(campaign)
        assert status["total"] == 3
        assert status["counts"]["pending"] == 3
        assert status["complete"] is False
        assert [p["state"] for p in status["points"]] == ["pending"] * 3

    def test_submit_is_idempotent(self, broker):
        campaign = smoke_campaign(2)
        broker.submit(campaign)
        lease = broker.lease("w1")
        status = broker.submit(campaign)
        # Resubmission neither duplicates points nor revokes a live lease.
        assert status["total"] == 2
        assert status["counts"]["leased"] == 1
        assert broker.heartbeat("w1", lease.campaign, lease.index)

    def test_submit_marks_cached_points_complete(self, store, broker):
        campaign = smoke_campaign(2)
        points = campaign.expand()
        store.save_json("result", points[0].digest, {"cached": True})
        status = broker.submit(campaign)
        assert status["counts"]["complete"] == 1
        assert status["counts"]["pending"] == 1

    def test_resubmit_requeues_failed_points(self, broker):
        campaign = smoke_campaign(1)
        broker.submit(campaign)
        lease = broker.lease("w1")
        assert broker.fail("w1", lease.campaign, lease.index, "boom")
        status = broker.submit(campaign)
        assert status["counts"]["failed"] == 0
        assert status["counts"]["pending"] == 1


class TestLeaseProtocol:
    def test_lease_assigns_points_in_order(self, broker):
        broker.submit(smoke_campaign(2))
        first = broker.lease("w1")
        second = broker.lease("w2")
        assert (first.index, second.index) == (0, 1)
        assert broker.lease("w3") is None
        assert broker.outstanding() == 2

    def test_expired_lease_is_stolen(self, broker, clock):
        broker.submit(smoke_campaign(1))
        lease = broker.lease("w1")
        clock.advance(9.0)
        assert broker.lease("w2") is None  # still held
        clock.advance(2.0)  # past the 10s deadline
        stolen = broker.lease("w2")
        assert stolen is not None
        assert stolen.index == lease.index
        assert stolen.worker == "w2"

    def test_heartbeat_extends_the_lease(self, broker, clock):
        broker.submit(smoke_campaign(1))
        lease = broker.lease("w1")
        clock.advance(8.0)
        assert broker.heartbeat("w1", lease.campaign, lease.index)
        clock.advance(8.0)  # 16s total, but extended at 8s
        assert broker.lease("w2") is None

    def test_heartbeat_after_expiry_reports_loss(self, broker, clock):
        broker.submit(smoke_campaign(1))
        lease = broker.lease("w1")
        clock.advance(11.0)
        assert broker.heartbeat("w1", lease.campaign, lease.index) is False

    def test_stale_holder_cannot_close_a_stolen_point(self, store, broker, clock):
        broker.submit(smoke_campaign(1))
        lease = broker.lease("w1")
        clock.advance(11.0)
        stolen = broker.lease("w2")
        store.save_json("result", stolen.digest, {"v": 1})
        # The original worker finishes late: identical digest-keyed bytes,
        # but the close is refused — w2 owns the point now.
        assert broker.complete("w1", lease.campaign, lease.index) is False
        assert broker.complete("w2", stolen.campaign, stolen.index) is True
        assert broker.status(lease.campaign)["counts"]["complete"] == 1

    def test_complete_without_result_artifact_becomes_failure(self, broker):
        broker.submit(smoke_campaign(1))
        lease = broker.lease("w1")
        assert broker.complete("w1", lease.campaign, lease.index) is False
        status = broker.status(lease.campaign)
        assert status["counts"]["failed"] == 1
        assert "without a result" in status["points"][0]["error"]

    def test_requeue_failed(self, broker):
        broker.submit(smoke_campaign(1))
        lease = broker.lease("w1")
        broker.fail("w1", lease.campaign, lease.index, "boom")
        assert broker.requeue_failed(lease.campaign) == 1
        assert broker.status(lease.campaign)["counts"]["pending"] == 1

    def test_manifest_mirrors_broker_state(self, store, broker):
        campaign = smoke_campaign(2)
        status = broker.submit(campaign)
        lease = broker.lease("w1")
        store.save_json("result", lease.digest, {"v": 1})
        broker.complete("w1", lease.campaign, lease.index)
        manifest = store.load_json("campaign", status["digest"])
        states = [entry["state"] for entry in manifest["points"]]
        assert states == ["complete", "pending"]

    def test_workers_listing_tracks_leases_and_counts(self, store, broker):
        broker.submit(smoke_campaign(2))
        lease = broker.lease("w1")
        store.save_json("result", lease.digest, {"v": 1})
        broker.complete("w1", lease.campaign, lease.index)
        broker.lease("w1")
        (record,) = broker.workers()
        assert record["worker"] == "w1"
        assert record["completed"] == 1
        assert record["lease"]["index"] == 1


class TestStatusSchema:
    def test_broker_status_matches_status_dict_schema(self, broker):
        status = broker.submit(smoke_campaign(1))
        reference = status_dict("x", "y", 1, {"pending": 1})
        assert set(reference) <= set(status)

    def test_runner_status_to_dict_shares_the_schema(self, store, broker, tmp_path):
        campaign = smoke_campaign(1)
        broker.submit(campaign)
        payload = CampaignRunner(Session(store=store)).status(campaign).to_dict()
        assert payload["counts"] == {"complete": 0, "failed": 0, "pending": 1}
        assert payload["complete"] is False
        assert payload["points"][0]["state"] == "pending"


class TestDigestParity:
    def test_fleet_with_killed_worker_matches_single_process(self, tmp_path):
        campaign = smoke_campaign(4)

        reference_store = ResultStore(tmp_path / "reference")
        reference = CampaignRunner(Session(store=reference_store)).run(campaign)
        reference_digest = digest_rows(export_rows(campaign.exporter, reference))

        store = SQLiteResultStore(tmp_path / "fleet.db")
        broker = Broker(store, lease_seconds=0.4)
        broker.submit(campaign)
        client = LocalBrokerClient(broker)

        # Worker 1 completes one point, then "crashes" while holding a
        # lease on the next (it leases but never heartbeats or closes).
        Worker(
            client, session=Session(store=store), worker_id="doomed", max_points=1
        ).run()
        abandoned = broker.lease("doomed")
        assert abandoned is not None

        # Worker 2 drains the rest, stealing the abandoned point once the
        # short lease expires.
        stats = Worker(
            client,
            session=Session(store=store),
            worker_id="survivor",
            poll_interval=0.05,
        ).run()
        assert stats["completed"] == 3
        assert broker.outstanding() == 0

        fleet_rows = CampaignRunner(Session(store=store)).rows(campaign)
        assert digest_rows(fleet_rows) == reference_digest
