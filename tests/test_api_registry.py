"""Unit tests for the string-keyed adversary registry."""

import pytest

from repro.adversary.brute_force import DefectionPoint
from repro.adversary.composed import ComposedAdversary
from repro.adversary.vectors import (
    AdmissionFloodVector,
    BruteForcePollVector,
    PipeStoppageVector,
)
from repro.api import DEFAULT_REGISTRY, AdversaryRegistry
from repro.config import smoke_config
from repro.experiments.world import build_world


@pytest.fixture
def world():
    protocol, sim = smoke_config()
    return build_world(protocol, sim)


class TestBuiltins:
    def test_builtin_kinds_are_registered(self):
        assert "pipe_stoppage" in DEFAULT_REGISTRY
        assert "admission_flood" in DEFAULT_REGISTRY
        assert "brute_force" in DEFAULT_REGISTRY
        assert "composed" in DEFAULT_REGISTRY

    def test_factories_build_thin_compositions(self, world):
        """The builtin kinds are single-vector stacks over ComposedAdversary."""
        cases = {
            "pipe_stoppage": PipeStoppageVector,
            "admission_flood": AdmissionFloodVector,
            "brute_force": BruteForcePollVector,
        }
        for kind, vector_type in cases.items():
            factory = DEFAULT_REGISTRY.factory(kind)
            built = factory(world)
            assert isinstance(built, ComposedAdversary)
            assert len(built.vectors) == 1
            assert isinstance(built.vectors[0], vector_type)

    def test_factory_records_its_kind_and_params(self):
        factory = DEFAULT_REGISTRY.factory("pipe_stoppage", coverage=0.4)
        assert factory.adversary_kind == "pipe_stoppage"
        assert factory.adversary_params == {"coverage": 0.4}

    def test_brute_force_accepts_string_defection(self, world):
        built = DEFAULT_REGISTRY.create("brute_force", world, defection="intro")
        assert built.vectors[0].defection is DefectionPoint.INTRO

    def test_params_override_defaults(self, world):
        built = DEFAULT_REGISTRY.create(
            "pipe_stoppage", world, attack_duration_days=5.0, coverage=0.5
        )
        assert built.targeting.coverage == 0.5
        assert built.schedule.attack_duration_days == 5.0


class TestRegistration:
    def test_decorator_registration_and_create(self):
        registry = AdversaryRegistry()

        @registry.register("custom", defaults={"rate": 2.0}, description="test attack")
        def build(world, *, rate):
            return ("custom-adversary", world, rate)

        assert "custom" in registry
        assert registry.get("custom").description == "test attack"
        assert registry.create("custom", "w")[2] == 2.0
        assert registry.create("custom", "w", rate=9.0)[2] == 9.0

    def test_description_falls_back_to_docstring(self):
        registry = AdversaryRegistry()

        @registry.register("documented")
        def build(world):
            """First line wins.

            Not this one.
            """
            return None

        assert registry.get("documented").description == "First line wins."

    def test_duplicate_registration_is_rejected(self):
        registry = AdversaryRegistry()
        registry.register("dup", lambda world: None)
        with pytest.raises(ValueError):
            registry.register("dup", lambda world: None)
        registry.register("dup", lambda world: "new", replace=True)
        assert registry.create("dup", None) == "new"

    def test_unknown_kind_raises_with_known_names(self):
        registry = AdversaryRegistry()
        registry.register("only", lambda world: None)
        with pytest.raises(KeyError, match="only"):
            registry.factory("missing")

    def test_unknown_parameter_is_rejected(self):
        registry = AdversaryRegistry()
        registry.register("strict", lambda world, rate=1.0: rate, defaults={"rate": 1.0})
        with pytest.raises(TypeError, match="bogus"):
            registry.create("strict", None, bogus=2)

    def test_iteration_is_sorted_by_name(self):
        registry = AdversaryRegistry()
        registry.register("zeta", lambda world: None)
        registry.register("alpha", lambda world: None)
        assert [entry.name for entry in registry] == ["alpha", "zeta"]
