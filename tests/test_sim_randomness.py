"""Unit tests for deterministic named RNG streams."""

import pytest

from repro.sim.randomness import (
    RandomLanes,
    RandomStreams,
    derive_seed,
    exponential,
    jittered,
    lane_name,
    poisson_process,
    sample_without_replacement,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "network") == derive_seed(1, "network")

    def test_different_names_differ(self):
        assert derive_seed(1, "network") != derive_seed(1, "storage")

    def test_different_masters_differ(self):
        assert derive_seed(1, "network") != derive_seed(2, "network")

    def test_similar_names_are_unrelated(self):
        assert derive_seed(1, "peer-1") != derive_seed(1, "peer-11")


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_reproducible_across_instances(self):
        first = RandomStreams(7).stream("x").random()
        second = RandomStreams(7).stream("x").random()
        assert first == second

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("a")
        b = streams.stream("b")
        # Consuming a lot of randomness from one stream must not change the
        # other stream's sequence.
        expected_b = RandomStreams(7).stream("b").random()
        for _ in range(1000):
            a.random()
        assert b.random() == expected_b

    def test_contains(self):
        streams = RandomStreams(7)
        assert "a" not in streams
        streams.stream("a")
        assert "a" in streams

    def test_spawn_produces_unrelated_streams(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()


class TestRandomLanes:
    def test_lane_is_the_named_child_stream(self):
        streams = RandomStreams(7)
        lanes = streams.lanes("adversary/composed")
        assert lanes.lane("targeting") is streams.stream("adversary/composed/targeting")
        assert lane_name("adversary/composed", "targeting") == (
            "adversary/composed/targeting"
        )

    def test_lanes_are_independent_per_component(self):
        lanes = RandomStreams(7).lanes("adversary/composed")
        expected = RandomStreams(7).lanes("adversary/composed").lane("b").random()
        a = lanes.lane("a")
        b = lanes.lane("b")
        for _ in range(1000):
            a.random()
        assert b.random() == expected

    def test_contains(self):
        streams = RandomStreams(7)
        lanes = streams.lanes("parent")
        assert "x" not in lanes
        lanes.lane("x")
        assert "x" in lanes
        assert isinstance(lanes, RandomLanes)

    def test_stream_stability_pinned(self):
        """Pinned first draws: renaming a lane (or changing the derivation
        scheme) silently reshuffles every composed attack's sample path, so
        the exact values are locked here.  If this test fails, a
        digest-breaking RNG change happened — make it consciously, with a
        bench-baseline refresh.
        """
        lanes = RandomStreams(1234).lanes("adversary/composed-adversary")
        assert lanes.lane("targeting").random() == 0.02734120583353239
        assert lanes.lane("vector-pipe_stoppage").random() == 0.39361812328349044
        assert derive_seed(1234, "adversary/composed-adversary/targeting") == (
            16221214590367866948
        )


class TestSnapshotRestore:
    @pytest.mark.parametrize("seed", [1, 42, 987654])
    def test_streams_restore_mid_stream_replays_identical_draws(self, seed):
        streams = RandomStreams(seed)
        a = streams.stream("a")
        b = streams.stream("b")
        for _ in range(17):
            a.random()
        b.random()
        snapshot = streams.snapshot()
        expected = [a.random() for _ in range(10)] + [b.random() for _ in range(10)]
        for _ in range(100):
            a.random()
        streams.restore(snapshot)
        replayed = [
            streams.stream("a").random() for _ in range(10)
        ] + [streams.stream("b").random() for _ in range(10)]
        assert replayed == expected

    @pytest.mark.parametrize("seed", [1, 42, 987654])
    def test_restore_into_fresh_factory(self, seed):
        streams = RandomStreams(seed)
        streams.stream("x").random()
        snapshot = streams.snapshot()
        expected = streams.stream("x").random()
        fresh = RandomStreams(seed)
        fresh.restore(snapshot)
        assert fresh.stream("x").random() == expected

    def test_restore_drops_streams_created_after_snapshot(self):
        streams = RandomStreams(5)
        streams.stream("old")
        snapshot = streams.snapshot()
        streams.stream("new")
        streams.restore(snapshot)
        assert "old" in streams
        assert "new" not in streams
        # Re-created on demand with its derived seed, as the original
        # timeline would have seeded it at first use.
        assert streams.stream("new").random() == RandomStreams(5).stream("new").random()

    def test_restore_rejects_foreign_master_seed(self):
        snapshot = RandomStreams(1).snapshot()
        with pytest.raises(ValueError):
            RandomStreams(2).restore(snapshot)

    def test_lanes_snapshot_covers_only_own_prefix(self):
        streams = RandomStreams(9)
        lanes = streams.lanes("adversary/x")
        lanes.lane("targeting").random()
        streams.stream("network").random()
        snapshot = lanes.snapshot()
        assert set(snapshot["streams"]) == {"adversary/x/targeting"}

    @pytest.mark.parametrize("seed", [1, 42, 987654])
    def test_lanes_restore_mid_stream(self, seed):
        streams = RandomStreams(seed)
        lanes = streams.lanes("adversary/x")
        lane = lanes.lane("schedule")
        for _ in range(7):
            lane.random()
        # The sibling stream's state must survive a lane restore untouched:
        # peek at its next value without consuming it.
        network = streams.stream("network")
        network.random()
        state = network.getstate()
        expected_network = network.random()
        network.setstate(state)

        snapshot = lanes.snapshot()
        expected = [lane.random() for _ in range(5)]
        for _ in range(50):
            lane.random()
        lanes.restore(snapshot)
        assert [lanes.lane("schedule").random() for _ in range(5)] == expected
        assert network.random() == expected_network

    def test_lanes_restore_rejects_foreign_master_seed(self):
        snapshot = RandomStreams(1).lanes("p").snapshot()
        with pytest.raises(ValueError):
            RandomStreams(2).lanes("p").restore(snapshot)


class TestHelpers:
    def test_exponential_rejects_bad_rate(self):
        streams = RandomStreams(1)
        with pytest.raises(ValueError):
            exponential(streams.stream("x"), 0.0)

    def test_exponential_mean_is_roughly_inverse_rate(self):
        rng = RandomStreams(1).stream("exp")
        samples = [exponential(rng, 0.5) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(2.0, rel=0.15)

    def test_sample_without_replacement_caps_at_population(self):
        rng = RandomStreams(1).stream("s")
        population = ["a", "b", "c"]
        sample = sample_without_replacement(rng, population, 10)
        assert sorted(sample) == ["a", "b", "c"]

    def test_sample_without_replacement_zero(self):
        rng = RandomStreams(1).stream("s")
        assert sample_without_replacement(rng, ["a"], 0) == []

    def test_sample_has_no_duplicates(self):
        rng = RandomStreams(1).stream("s")
        population = list(range(100))
        sample = sample_without_replacement(rng, population, 50)
        assert len(sample) == len(set(sample)) == 50

    def test_jittered_within_bounds(self):
        rng = RandomStreams(1).stream("j")
        for _ in range(100):
            value = jittered(rng, 100.0, 0.1)
            assert 90.0 <= value <= 110.0

    def test_jittered_zero_fraction_is_identity(self):
        rng = RandomStreams(1).stream("j")
        assert jittered(rng, 42.0, 0.0) == 42.0

    def test_poisson_process_events_within_window(self):
        rng = RandomStreams(1).stream("p")
        events = list(poisson_process(rng, rate=1.0, start=10.0, end=20.0))
        assert all(10.0 < t < 20.0 for t in events)
        assert events == sorted(events)

    def test_poisson_process_rate_controls_count(self):
        rng = RandomStreams(2).stream("p")
        sparse = len(list(poisson_process(rng, rate=0.01, start=0.0, end=1000.0)))
        dense = len(list(poisson_process(rng, rate=0.1, start=0.0, end=1000.0)))
        assert dense > sparse
