"""Metric primitives, text exposition, and bus-fed aggregation."""

import pytest

from repro.telemetry import (
    Counter,
    EventBus,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_goes_up_and_rejects_negatives(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.0, kind="x")
        assert counter.value() == 1.0
        assert counter.value(kind="x") == 2.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_sets_and_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value() == 3.0

    def test_histogram_buckets_sum_count(self):
        histogram = Histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(55.55)
        lines = histogram.exposition()
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 2' in lines
        assert 'h_seconds_bucket{le="10"} 3' in lines
        assert 'h_seconds_bucket{le="+Inf"} 4' in lines
        assert "h_seconds_count 4" in lines

    def test_registry_get_or_create_and_kind_conflicts(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")
        with pytest.raises(TypeError):
            registry.gauge("x_total")

    def test_exposition_is_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things").inc(3, kind="x")
        text = registry.exposition()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{kind="x"} 3' in text
        assert text.endswith("\n")

    def test_snapshot_is_json_native(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())  # must not raise


class TestAggregator:
    def _agg(self):
        bus = EventBus()
        return bus, MetricsAggregator(bus)

    def test_polls_by_outcome(self):
        bus, agg = self._agg()
        bus.publish("poll", ["poll", 1.0, "p", "au", "conclude", True, False])
        bus.publish("poll", ["poll", 2.0, "p", "au", "conclude", False, True])
        agg.pump()
        assert agg.registry.counter("repro_polls_concluded_total").value(outcome="success") == 1
        assert agg.registry.counter("repro_polls_concluded_total").value(outcome="failure") == 1

    def test_admission_decisions_and_accept_rate(self):
        bus, agg = self._agg()
        bus.publish("admission", ["adm", 1.0, "v", "p", "admitted"])
        bus.publish("admission", ["adm", 2.0, "v", "p", "admitted_introduced"])
        bus.publish("admission", ["adm", 3.0, "v", "p", "dropped_refractory"])
        bus.publish("admission", ["adm", 4.0, "v", "p", "dropped_random"])
        agg.pump()
        rate = agg.registry.gauge("repro_admission_accept_rate").value()
        assert rate == pytest.approx(0.5)

    def test_admission_summary_folds_decision_counts(self):
        bus, agg = self._agg()
        bus.publish(
            "admission",
            ["admsum", 1.0, 9.0, 300, {"admitted": 100, "dropped_refractory": 200}],
        )
        agg.pump()
        decisions = agg.registry.counter("repro_admission_decisions_total")
        assert decisions.value(decision="admitted") == 100
        assert decisions.value(decision="dropped_refractory") == 200
        rate = agg.registry.gauge("repro_admission_accept_rate").value()
        assert rate == pytest.approx(100 / 300)

    def test_damage_summary_counts_all_records(self):
        bus, agg = self._agg()
        bus.publish(
            "damage",
            ["dmgsum", 1.0, 2.0, 7, [["peer-1", "au-1", 4], ["peer-2", "au-1", 3]]],
        )
        bus.publish("damage", ["dmg", 3.0, "peer-1", "au-2", 9])
        agg.pump()
        assert agg.registry.counter("repro_damage_blocks_total").value() == 8

    def test_fault_downtime_pairs_crash_with_restart(self):
        bus, agg = self._agg()
        bus.publish("fault", ["fault", 10.0, "peer-0001", "crash"])
        bus.publish("fault", ["fault", 25.0, "peer-0001", "restart"])
        bus.publish("fault", ["fault", 5.0, "net", "partition_start"])
        agg.pump()
        downtime = agg.registry.counter("repro_fault_downtime_sim_seconds_total")
        assert downtime.value() == pytest.approx(15.0)
        transitions = agg.registry.counter("repro_fault_transitions_total")
        assert transitions.value(event="crash") == 1

    def test_run_lifecycle_counts_and_wall_histogram(self):
        bus, agg = self._agg()
        bus.publish("run_lifecycle", {"state": "started", "digest": "d"})
        bus.publish("run_lifecycle", {"state": "finished", "digest": "d", "wall_s": 0.2})
        agg.pump()
        runs = agg.registry.counter("repro_runs_total")
        assert runs.value(state="started") == 1
        assert runs.value(state="finished") == 1
        assert agg.registry.histogram("repro_run_wall_seconds").count() == 1

    def test_campaign_progress_sets_point_gauges(self):
        bus, agg = self._agg()
        bus.publish(
            "campaign_progress",
            {"digest": "f" * 64, "counts": {"complete": 3, "pending": 2}},
        )
        agg.pump()
        gauge = agg.registry.gauge("repro_campaign_points")
        assert gauge.value(campaign="f" * 12, state="complete") == 3

    def test_worker_liveness_telemetry_gauges(self):
        bus, agg = self._agg()
        bus.publish(
            "worker_liveness",
            {
                "worker": "w1",
                "event": "heartbeat",
                "telemetry": {
                    "points_completed": 4,
                    "mean_point_wall_s": 1.5,
                    "consecutive_heartbeat_failures": 2,
                },
            },
        )
        agg.pump()
        reg = agg.registry
        assert reg.gauge("repro_worker_points_completed").value(worker="w1") == 4
        assert reg.gauge("repro_worker_mean_point_wall_seconds").value(worker="w1") == 1.5
        assert reg.gauge("repro_worker_consecutive_heartbeat_failures").value(worker="w1") == 2

    def test_malformed_events_never_break_the_pump(self):
        bus, agg = self._agg()
        bus.publish("poll", "not a list")
        bus.publish("fault", ["fault"])
        bus.publish("run_lifecycle", None)
        assert agg.pump() == 3
        assert agg.registry.counter("repro_bus_events_total").value() == 3

    def test_ring_overflow_is_surfaced_as_dropped_gauge(self):
        bus = EventBus()
        agg = MetricsAggregator(bus, capacity=8)
        for index in range(20):
            bus.publish("damage", ["dmg", float(index)])
        agg.pump()
        assert agg.registry.gauge("repro_bus_dropped_events_total").value() == 12
