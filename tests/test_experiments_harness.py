"""Integration tests for the experiment harness (runner, sweeps, reporting)."""

import pytest

from repro import units
from repro.adversary.brute_force import DefectionPoint
from repro.config import smoke_config
from repro.experiments import ablation, admission_attack, baseline, effortful, pipe_stoppage
from repro.experiments.reporting import format_table, format_value, rows_from_dicts
from repro.experiments.runner import (
    baseline_runs,
    clear_baseline_cache,
    run_attack_experiment,
    run_many,
)


@pytest.fixture(autouse=True)
def _clear_cache():
    clear_baseline_cache()
    yield
    clear_baseline_cache()


@pytest.fixture
def smoke():
    protocol, sim = smoke_config()
    # Shorten further so each harness test runs in a couple of seconds.
    return protocol, sim.with_overrides(duration=units.months(7))


class TestRunner:
    def test_run_many_produces_one_result_per_seed(self, smoke):
        protocol, sim = smoke
        results = run_many(protocol, sim, seeds=(1, 2))
        assert len(results) == 2

    def test_baseline_cache_reuses_runs(self, smoke):
        protocol, sim = smoke
        first = baseline_runs(protocol, sim, seeds=(1,))
        second = baseline_runs(protocol, sim, seeds=(1,))
        assert first is second
        clear_baseline_cache()
        third = baseline_runs(protocol, sim, seeds=(1,))
        assert third is not first

    def test_run_attack_experiment_compares_against_baseline(self, smoke):
        protocol, sim = smoke
        factory = pipe_stoppage.make_pipe_stoppage_factory(
            attack_duration=units.days(90), coverage=1.0, recuperation=units.days(15)
        )
        result = run_attack_experiment(
            "pipe", protocol, sim, factory, seeds=(1,), parameters={"coverage": 1.0}
        )
        assert result.assessment.delay_ratio >= 1.0
        assert result.assessment.cost_ratio is None
        assert result.parameters == {"coverage": 1.0}
        assert len(result.attacked_runs) == 1
        assert len(result.baseline_runs) == 1


class TestSweeps:
    def test_baseline_sweep_rows_have_expected_columns(self, smoke):
        protocol, sim = smoke
        rows = baseline.baseline_sweep(
            poll_intervals_months=(2.0, 4.0),
            storage_mtbf_years=(1.0,),
            collection_sizes=(1,),
            seeds=(1,),
            protocol_config=protocol,
            sim_config=sim,
        )
        assert len(rows) == 2
        for row in rows:
            assert set(baseline.FIGURE2_COLUMNS) <= set(row)
            assert row["normalized_access_failure_probability"] <= row[
                "access_failure_probability"
            ]
        assert rows[0]["poll_interval_months"] == 2.0
        assert rows[1]["poll_interval_months"] == 4.0

    def test_baseline_reference_point(self, smoke):
        protocol, sim = smoke
        row = baseline.baseline_reference_point(
            seeds=(1,), protocol_config=protocol, sim_config=sim
        )
        assert row["poll_interval_months"] == 3.0
        assert row["storage_mtbf_years"] == 5.0

    def test_pipe_stoppage_sweep_structure(self, smoke):
        protocol, sim = smoke
        rows = pipe_stoppage.pipe_stoppage_sweep(
            durations_days=(60.0,),
            coverages=(1.0,),
            seeds=(1,),
            protocol_config=protocol,
            sim_config=sim,
            recuperation_days=15.0,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["coverage"] == 1.0
        assert row["delay_ratio"] >= 1.0
        assert row["coefficient_of_friction"] > 0
        assert "normalized_access_failure_probability" in row

    def test_admission_sweep_structure(self, smoke):
        protocol, sim = smoke
        rows = admission_attack.admission_attack_sweep(
            durations_days=(60.0,),
            coverages=(1.0,),
            seeds=(1,),
            protocol_config=protocol,
            sim_config=sim,
            invitations_per_victim_per_day=6.0,
        )
        assert len(rows) == 1
        assert rows[0]["attack_duration_days"] == 60.0
        assert rows[0]["delay_ratio"] > 0

    def test_effortful_table_structure(self, smoke):
        protocol, sim = smoke
        rows = effortful.effortful_table(
            defections=(DefectionPoint.INTRO, DefectionPoint.NONE),
            collection_sizes=(1,),
            seeds=(1,),
            protocol_config=protocol,
            sim_config=sim,
        )
        assert [row["defection"] for row in rows] == ["intro", "none"]
        for row in rows:
            assert row["cost_ratio"] is not None and row["cost_ratio"] > 0
            assert row["coefficient_of_friction"] > 0
            assert set(effortful.TABLE1_COLUMNS) <= set(row)

    def test_paper_scale_parameter_documentation(self):
        assert baseline.paper_scale_parameters()["runs_per_point"] == 3
        assert 180 in pipe_stoppage.paper_scale_parameters()["durations_days"]
        assert 720 in admission_attack.paper_scale_parameters()["durations_days"]
        table1 = effortful.paper_scale_parameters()
        assert ("NONE", 600) in table1["paper_values"]


class TestAblation:
    def test_admission_control_ablation_shows_the_defense_helps(self, smoke):
        protocol, sim = smoke
        rows = ablation.admission_control_ablation(
            attack_duration_days=60.0,
            coverage=1.0,
            invitations_per_victim_per_day=48.0,
            seeds=(1,),
            protocol_config=protocol,
            sim_config=sim,
        )
        assert [row["admission_control"] for row in rows] == [True, False]
        enabled, disabled = rows
        # With the filter disabled, every garbage invitation is considered,
        # so the defenders do at least as much work per successful poll.
        assert disabled["loyal_effort"] >= enabled["loyal_effort"]

    def test_effort_balancing_ablation_cheapens_the_attack(self, smoke):
        protocol, sim = smoke
        rows = ablation.effort_balancing_ablation(
            introductory_fractions=(0.20, 0.02),
            seeds=(1,),
            protocol_config=protocol,
            sim_config=sim,
        )
        assert len(rows) == 2
        full_toll, tiny_toll = rows
        assert tiny_toll["adversary_effort"] < full_toll["adversary_effort"]

    def test_desynchronization_ablation_reports_both_modes(self, smoke):
        protocol, sim = smoke
        rows = ablation.desynchronization_ablation(
            seeds=(1,), protocol_config=protocol, sim_config=sim
        )
        assert [row["mode"] for row in rows] == ["desynchronized", "synchronized"]
        for row in rows:
            assert 0.0 <= row["success_rate"] <= 1.0


class TestReporting:
    def test_format_value_styles(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.500"
        assert format_value(5.9e-4) == "5.90e-04"
        assert format_value("x") == "x"

    def test_format_table_alignment_and_rows(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "long-name" in lines[3]

    def test_rows_from_dicts_projects_columns(self):
        records = [{"a": 1, "b": 2}, {"a": 3}]
        assert rows_from_dicts(records, ["a", "b"]) == [[1, 2], [3, None]]

    def test_figure_formatters_render(self):
        rows = [
            {
                "poll_interval_months": 3,
                "storage_mtbf_years": 5,
                "n_aus": 1,
                "access_failure_probability": 1e-3,
                "successful_polls": 10,
                "failed_polls": 1,
            }
        ]
        assert "poll_interval_months" in baseline.format_figure2(rows)
        attack_rows = [
            {
                "attack_duration_days": 30,
                "coverage": 1.0,
                "access_failure_probability": 2e-3,
                "delay_ratio": 1.5,
                "coefficient_of_friction": 1.2,
            }
        ]
        assert "delay_ratio" in pipe_stoppage.format_figures(attack_rows)
        assert "delay_ratio" in admission_attack.format_figures(attack_rows)
        table1_rows = [
            {
                "defection": "none",
                "n_aus": 1,
                "coefficient_of_friction": 2.5,
                "cost_ratio": 1.0,
                "delay_ratio": 1.1,
                "access_failure_probability": 5e-4,
            }
        ]
        assert "cost_ratio" in effortful.format_table1(table1_rows)
