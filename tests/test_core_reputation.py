"""Unit tests for first-hand reputation, refractory periods, and introductions."""

import pytest

from repro import units
from repro.core.reputation import Grade, IntroductionTable, KnownPeers, RefractoryState


class TestGrade:
    def test_ordering(self):
        assert Grade.DEBT < Grade.EVEN < Grade.CREDIT

    def test_raised_saturates_at_credit(self):
        assert Grade.DEBT.raised() is Grade.EVEN
        assert Grade.EVEN.raised() is Grade.CREDIT
        assert Grade.CREDIT.raised() is Grade.CREDIT

    def test_lowered_saturates_at_debt(self):
        assert Grade.CREDIT.lowered() is Grade.EVEN
        assert Grade.EVEN.lowered() is Grade.DEBT
        assert Grade.DEBT.lowered() is Grade.DEBT


class TestKnownPeers:
    def setup_method(self):
        self.known = KnownPeers(decay_interval=units.months(6))

    def test_unknown_peer_has_no_grade(self):
        assert self.known.grade_of("stranger", now=0.0) is None
        assert self.known.is_unknown("stranger", now=0.0)

    def test_vote_received_raises_grade(self):
        self.known.set_grade("voter", Grade.DEBT, now=0.0)
        self.known.record_vote_received("voter", now=0.0)
        assert self.known.grade_of("voter", now=0.0) is Grade.EVEN
        self.known.record_vote_received("voter", now=1.0)
        assert self.known.grade_of("voter", now=1.0) is Grade.CREDIT

    def test_vote_received_from_unknown_starts_at_credit(self):
        # The grade is a clamped exchange balance: one vote received from a
        # previously unknown peer puts that peer one step above even.
        self.known.record_vote_received("voter", now=0.0)
        assert self.known.grade_of("voter", now=0.0) is Grade.CREDIT

    def test_vote_supplied_lowers_grade(self):
        self.known.set_grade("poller", Grade.CREDIT, now=0.0)
        self.known.record_vote_supplied("poller", now=1.0)
        assert self.known.grade_of("poller", now=1.0) is Grade.EVEN
        self.known.record_vote_supplied("poller", now=2.0)
        assert self.known.grade_of("poller", now=2.0) is Grade.DEBT

    def test_vote_supplied_to_unknown_starts_in_debt(self):
        self.known.record_vote_supplied("poller", now=0.0)
        assert self.known.grade_of("poller", now=0.0) is Grade.DEBT

    def test_penalize_goes_straight_to_debt(self):
        self.known.set_grade("cheat", Grade.CREDIT, now=0.0)
        self.known.penalize("cheat", now=1.0)
        assert self.known.grade_of("cheat", now=1.0) is Grade.DEBT

    def test_grades_decay_toward_debt(self):
        self.known.set_grade("idle", Grade.CREDIT, now=0.0)
        assert self.known.grade_of("idle", now=units.months(3)) is Grade.CREDIT
        assert self.known.grade_of("idle", now=units.months(7)) is Grade.EVEN
        assert self.known.grade_of("idle", now=units.months(13)) is Grade.DEBT

    def test_decay_never_forgets_the_peer(self):
        self.known.set_grade("idle", Grade.EVEN, now=0.0)
        assert self.known.grade_of("idle", now=units.years(10)) is Grade.DEBT
        assert not self.known.is_unknown("idle", now=units.years(10))

    def test_ensure_known_does_not_overwrite(self):
        self.known.set_grade("p", Grade.CREDIT, now=0.0)
        self.known.ensure_known("p", now=1.0, grade=Grade.EVEN)
        assert self.known.grade_of("p", now=1.0) is Grade.CREDIT

    def test_reciprocity_cycle(self):
        """A supplies to B, B supplies back: both end up even or better."""
        a_view = KnownPeers(decay_interval=units.months(6))
        b_view = KnownPeers(decay_interval=units.months(6))
        # B votes for A: A raises B, B lowers A.
        a_view.record_vote_received("B", now=0.0)
        b_view.record_vote_supplied("A", now=0.0)
        # A votes for B: B raises A, A lowers B.
        b_view.record_vote_received("A", now=1.0)
        a_view.record_vote_supplied("B", now=1.0)
        assert a_view.grade_of("B", now=1.0) in (Grade.EVEN, Grade.CREDIT)
        assert b_view.grade_of("A", now=1.0) in (Grade.EVEN, Grade.CREDIT)

    def test_rejects_bad_decay_interval(self):
        with pytest.raises(ValueError):
            KnownPeers(decay_interval=0.0)

    def test_known_peers_listing(self):
        self.known.set_grade("a", Grade.EVEN, now=0.0)
        self.known.set_grade("b", Grade.DEBT, now=0.0)
        assert sorted(self.known.known_peers()) == ["a", "b"]
        assert len(self.known) == 2
        assert "a" in self.known


class TestRefractoryState:
    def test_initially_not_refractory(self):
        state = RefractoryState(period=units.DAY)
        assert not state.in_refractory(0.0)

    def test_trigger_starts_period(self):
        state = RefractoryState(period=units.DAY)
        state.trigger(now=100.0)
        assert state.in_refractory(100.0 + units.HOUR)
        assert not state.in_refractory(100.0 + units.DAY + 1)
        assert state.triggers == 1

    def test_remaining(self):
        state = RefractoryState(period=units.DAY)
        state.trigger(now=0.0)
        assert state.remaining(now=units.HOUR) == pytest.approx(23 * units.HOUR)
        assert state.remaining(now=2 * units.DAY) == 0.0

    def test_retrigger_extends(self):
        state = RefractoryState(period=units.DAY)
        state.trigger(now=0.0)
        state.trigger(now=0.5 * units.DAY)
        assert state.in_refractory(1.2 * units.DAY)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            RefractoryState(period=0.0)


class TestIntroductionTable:
    def test_add_and_has(self):
        table = IntroductionTable(cap=10)
        table.add("newcomer", "sponsor")
        assert table.has_introduction("newcomer")
        assert not table.has_introduction("sponsor")
        assert len(table) == 1

    def test_self_introduction_ignored(self):
        table = IntroductionTable(cap=10)
        table.add("peer", "peer")
        assert len(table) == 0

    def test_consume_removes_introducee(self):
        table = IntroductionTable(cap=10)
        table.add("newcomer", "sponsor")
        assert table.consume("newcomer")
        assert not table.has_introduction("newcomer")
        assert not table.consume("newcomer")

    def test_consume_forgets_other_introductions_by_same_sponsor(self):
        table = IntroductionTable(cap=10)
        table.add("a", "sponsor")
        table.add("b", "sponsor")
        table.consume("a")
        assert not table.has_introduction("b")

    def test_consume_forgets_other_sponsors_of_same_introducee(self):
        table = IntroductionTable(cap=10)
        table.add("a", "sponsor1")
        table.add("a", "sponsor2")
        table.add("c", "sponsor2")
        table.consume("a")
        assert not table.has_introduction("a")
        # sponsor2's other introduction is also forgotten (one honored per
        # introducer).
        assert not table.has_introduction("c")

    def test_cap_evicts_oldest(self):
        table = IntroductionTable(cap=2)
        table.add("a", "s1")
        table.add("b", "s2")
        table.add("c", "s3")
        assert not table.has_introduction("a")
        assert table.has_introduction("b")
        assert table.has_introduction("c")
        assert len(table) == 2

    def test_remove_introducer_drops_its_introductions(self):
        table = IntroductionTable(cap=10)
        table.add("a", "leaving")
        table.add("b", "leaving")
        table.add("b", "staying")
        table.remove_introducer("leaving")
        assert not table.has_introduction("a")
        assert table.has_introduction("b")

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            IntroductionTable(cap=0)

    def test_outstanding_listing(self):
        table = IntroductionTable(cap=10)
        table.add("a", "s")
        table.add("b", "s")
        assert table.outstanding() == {"a", "b"}
