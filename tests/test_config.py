"""Unit tests for the configuration dataclasses."""

import dataclasses

import pytest

from repro import units
from repro.config import (
    ProtocolConfig,
    SimulationConfig,
    paper_config,
    scaled_config,
    smoke_config,
)


class TestProtocolConfig:
    def test_paper_defaults(self):
        config = ProtocolConfig()
        assert config.poll_interval == units.months(3)
        assert config.quorum == 10
        assert config.max_disagreeing_votes == 3
        assert config.drop_probability_unknown == pytest.approx(0.90)
        assert config.drop_probability_debt == pytest.approx(0.80)
        assert config.refractory_period == units.DAY
        assert config.introductory_effort_fraction == pytest.approx(0.20)

    def test_inner_circle_is_twice_quorum_by_default(self):
        config = ProtocolConfig()
        assert config.inner_circle_size == 20

    def test_with_overrides_returns_new_object(self):
        config = ProtocolConfig()
        other = config.with_overrides(quorum=5)
        assert other.quorum == 5
        assert config.quorum == 10
        assert other is not config

    def test_rejects_zero_quorum(self):
        with pytest.raises(ValueError):
            ProtocolConfig(quorum=0)

    def test_rejects_bad_drop_probability(self):
        with pytest.raises(ValueError):
            ProtocolConfig(drop_probability_unknown=1.5)

    def test_rejects_inner_circle_smaller_than_quorum(self):
        with pytest.raises(ValueError):
            ProtocolConfig(inner_circle_factor=0.5)

    def test_rejects_negative_poll_interval(self):
        with pytest.raises(ValueError):
            ProtocolConfig(poll_interval=-1.0)

    def test_rejects_bad_introductory_fraction(self):
        with pytest.raises(ValueError):
            ProtocolConfig(introductory_effort_fraction=0.0)
        with pytest.raises(ValueError):
            ProtocolConfig(introductory_effort_fraction=1.0)

    def test_rejects_phases_exceeding_interval(self):
        with pytest.raises(ValueError):
            ProtocolConfig(solicitation_fraction=0.8, outer_circle_fraction=0.3)

    def test_is_frozen_against_accidental_sharing(self):
        config = ProtocolConfig()
        copy = config.with_overrides()
        assert copy == config


class TestSimulationConfig:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.n_peers == 100
        assert config.n_aus == 50
        assert config.au_size == units.GB // 2
        assert config.duration == units.years(2)
        assert config.storage_mtbf_disk_years == 5.0

    def test_blocks_per_au(self):
        config = SimulationConfig(au_size=10 * units.MB, block_size=units.MB)
        assert config.blocks_per_au == 10

    def test_storage_failure_rate_scales_with_collection(self):
        small = SimulationConfig(n_aus=50)
        large = SimulationConfig(n_aus=600)
        ratio = large.storage_failure_rate_per_peer / small.storage_failure_rate_per_peer
        assert ratio == pytest.approx(12.0)

    def test_storage_failure_rate_matches_paper_definition(self):
        config = SimulationConfig(n_aus=50, storage_mtbf_disk_years=5.0)
        expected = 1.0 / (5.0 * units.YEAR)
        assert config.storage_failure_rate_per_peer == pytest.approx(expected)

    def test_damage_inflation_multiplies_rate(self):
        base = SimulationConfig(n_aus=50)
        inflated = SimulationConfig(n_aus=50, storage_damage_inflation=10.0)
        assert inflated.storage_failure_rate_per_peer == pytest.approx(
            10.0 * base.storage_failure_rate_per_peer
        )

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_peers=1)

    def test_rejects_au_smaller_than_block(self):
        with pytest.raises(ValueError):
            SimulationConfig(au_size=10, block_size=100)

    def test_rejects_negative_inflation(self):
        with pytest.raises(ValueError):
            SimulationConfig(storage_damage_inflation=-1.0)

    def test_rejects_invalid_latency_range(self):
        with pytest.raises(ValueError):
            SimulationConfig(link_latency_range=(0.1, 0.01))

    def test_with_overrides(self):
        config = SimulationConfig()
        other = config.with_overrides(seed=99, n_aus=7)
        assert other.seed == 99
        assert other.n_aus == 7
        assert config.seed == 1


class TestFactories:
    def test_paper_config_uses_defaults(self):
        protocol, sim = paper_config()
        assert protocol.quorum == 10
        assert sim.n_peers == 100

    def test_scaled_config_preserves_protocol_structure(self):
        protocol, sim = scaled_config()
        assert protocol.inner_circle_size == 2 * protocol.quorum
        assert sim.n_peers > 2 * protocol.inner_circle_size / 2
        assert sim.initial_reference_list_size <= sim.n_peers - 1

    def test_scaled_config_parametrization(self):
        protocol, sim = scaled_config(n_peers=10, n_aus=1, seed=7)
        assert sim.n_peers == 10
        assert sim.n_aus == 1
        assert sim.seed == 7

    def test_smoke_config_is_small(self):
        protocol, sim = smoke_config()
        assert sim.n_peers <= 12
        assert sim.duration <= units.years(1)
        assert protocol.quorum <= 5
