"""Property-based tests (hypothesis) for the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.sim.engine import Simulator
from repro.sim.network import LinkProperties, Network, Node
from repro.sim.randomness import RandomStreams


# --- Event engine ------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=100))
def test_events_fire_in_nondecreasing_time_order(delays):
    simulator = Simulator()
    fired = []
    for delay in delays:
        simulator.schedule(delay, lambda d=delay: fired.append(simulator.now))
    simulator.run(until=2000.0)
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert simulator.events_processed == len(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=80),
    st.data(),
)
def test_cancelled_events_never_fire(delays, data):
    simulator = Simulator()
    fired = []
    handles = [
        simulator.schedule(delay, lambda index=index: fired.append(index))
        for index, delay in enumerate(delays)
    ]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(handles) - 1), max_size=len(handles))
    )
    for index in to_cancel:
        handles[index].cancel()
    simulator.run(until=2000.0)
    assert set(fired) == set(range(len(delays))) - to_cancel


@given(
    st.floats(min_value=0.5, max_value=50.0),
    st.floats(min_value=51.0, max_value=500.0),
)
def test_recurring_events_fire_expected_number_of_times(interval, horizon):
    simulator = Simulator()
    count = [0]
    simulator.call_every(interval, lambda: count.__setitem__(0, count[0] + 1))
    simulator.run(until=horizon)
    expected = int(horizon // interval)
    # Allow one tick of slack for floating-point accumulation at the exact
    # horizon boundary (e.g. 50 * 1.04 vs 52.0).
    assert expected - 1 <= count[0] <= expected + 1


# --- Random streams ------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_named_streams_are_reproducible(seed, name):
    a = RandomStreams(seed).stream(name).random()
    b = RandomStreams(seed).stream(name).random()
    assert a == b


@given(st.integers(min_value=0, max_value=2**31))
def test_distinct_names_give_distinct_sequences(seed):
    streams = RandomStreams(seed)
    a = [streams.stream("alpha").random() for _ in range(3)]
    b = [streams.stream("beta").random() for _ in range(3)]
    assert a != b


# --- Network ----------------------------------------------------------------------------------

class _Sink(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def receive_message(self, message):
        self.received.append(message)


@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 10_000_000)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50)
def test_network_conserves_messages(sends):
    simulator = Simulator()
    network = Network(simulator, RandomStreams(1))
    nodes = [_Sink("n%d" % i) for i in range(5)]
    for node in nodes:
        network.register(node, LinkProperties(bandwidth_bps=units.mbps(10), latency=0.01))
    for sender, recipient, size in sends:
        network.send("n%d" % sender, "n%d" % recipient, payload="x", size_bytes=size)
    simulator.run(until=units.DAY)
    delivered = sum(len(node.received) for node in nodes)
    stats = network.stats
    assert stats.messages_sent == len(sends)
    assert delivered == stats.messages_delivered
    assert (
        stats.messages_delivered
        + stats.messages_dropped_blocked
        + stats.messages_dropped_unknown
        == stats.messages_sent
    )


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=40,
    ),
    st.sets(st.integers(0, 3)),
)
@settings(max_examples=50)
def test_blocked_identities_never_receive(sends, blocked):
    simulator = Simulator()
    network = Network(simulator, RandomStreams(2))
    nodes = [_Sink("n%d" % i) for i in range(4)]
    for node in nodes:
        network.register(node, LinkProperties(bandwidth_bps=units.mbps(10), latency=0.01))
    for index in blocked:
        network.block("n%d" % index)
    for sender, recipient, _ in sends:
        network.send("n%d" % sender, "n%d" % recipient, payload="x", size_bytes=100)
    simulator.run(until=units.DAY)
    for index in blocked:
        assert nodes[index].received == []
