"""Unit tests for the delay-based network model and pipe stoppage."""

import pytest

from repro import units
from repro.sim.network import LinkProperties, Message, Network, Node


class RecordingNode(Node):
    """Test double that records every delivered message."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def receive_message(self, message):
        self.received.append(message)


@pytest.fixture
def two_nodes(simulator, network):
    a = RecordingNode("a")
    b = RecordingNode("b")
    network.register(a, LinkProperties(bandwidth_bps=units.mbps(10), latency=0.010))
    network.register(b, LinkProperties(bandwidth_bps=units.mbps(10), latency=0.010))
    return a, b


class TestRegistration:
    def test_register_assigns_link_from_configured_choices(self, simulator, streams):
        network = Network(
            simulator,
            streams,
            bandwidth_choices=(units.mbps(1.5), units.mbps(10)),
            latency_range=(0.001, 0.030),
        )
        node = RecordingNode("n")
        link = network.register(node)
        assert link.bandwidth_bps in (units.mbps(1.5), units.mbps(10))
        assert 0.001 <= link.latency <= 0.030

    def test_duplicate_identity_rejected(self, network):
        node = RecordingNode("dup")
        network.register(node)
        with pytest.raises(ValueError):
            network.register(node)

    def test_alias_identity_routes_to_same_node(self, simulator, network):
        node = RecordingNode("owner")
        network.register(node)
        network.register_identity("alias-1", node)
        assert network.node_for("alias-1") is node

    def test_alias_shares_owner_link(self, network):
        node = RecordingNode("owner")
        owner_link = network.register(node)
        alias_link = network.register_identity("alias-1", node)
        assert alias_link is owner_link

    def test_is_registered(self, network, two_nodes):
        assert network.is_registered("a")
        assert not network.is_registered("nope")


class TestDelivery:
    def test_message_is_delivered_with_payload(self, simulator, network, two_nodes):
        a, b = two_nodes
        assert network.send("a", "b", {"hello": 1}, 1000)
        simulator.run(until=1.0)
        assert len(b.received) == 1
        assert b.received[0].payload == {"hello": 1}
        assert b.received[0].sender == "a"

    def test_delivery_delay_includes_latency_and_serialization(
        self, simulator, network, two_nodes
    ):
        a, b = two_nodes
        size = units.MB
        network.send("a", "b", "payload", size)
        expected = 0.020 + units.transmission_time(size, units.mbps(10))
        # Not yet delivered just before the expected time.
        simulator.run(until=expected * 0.99)
        assert b.received == []
        simulator.run(until=expected * 1.01)
        assert len(b.received) == 1

    def test_send_to_unknown_identity_is_dropped(self, simulator, network, two_nodes):
        assert network.send("a", "ghost", "x", 10) is False
        assert network.stats.messages_dropped_unknown == 1

    def test_send_from_unknown_identity_raises(self, network, two_nodes):
        with pytest.raises(ValueError):
            network.send("ghost", "a", "x", 10)

    def test_negative_size_rejected(self, network, two_nodes):
        with pytest.raises(ValueError):
            network.send("a", "b", "x", -1)

    def test_traffic_accounting(self, simulator, network, two_nodes):
        a, b = two_nodes
        network.send("a", "b", "x", 100)
        network.send("b", "a", "y", 200)
        simulator.run(until=1.0)
        stats = network.stats
        assert stats.messages_sent == 2
        assert stats.messages_delivered == 2
        assert stats.bytes_sent == 300
        assert stats.per_identity_bytes_sent["a"] == 100
        assert stats.per_identity_bytes_received["a"] == 200

    def test_delivery_hook_sees_messages(self, simulator, network, two_nodes):
        seen = []
        network.delivery_hook = seen.append
        network.send("a", "b", "x", 10)
        simulator.run(until=1.0)
        assert len(seen) == 1
        assert isinstance(seen[0], Message)


class TestPipeStoppage:
    def test_blocked_recipient_never_receives(self, simulator, network, two_nodes):
        a, b = two_nodes
        network.block("b")
        network.send("a", "b", "x", 10)
        simulator.run(until=1.0)
        assert b.received == []
        assert network.stats.messages_dropped_blocked == 1

    def test_blocked_sender_cannot_send(self, simulator, network, two_nodes):
        a, b = two_nodes
        network.block("a")
        assert network.send("a", "b", "x", 10) is False
        simulator.run(until=1.0)
        assert b.received == []

    def test_block_while_in_flight_suppresses_delivery(self, simulator, network, two_nodes):
        a, b = two_nodes
        network.send("a", "b", "x", units.MB)
        network.block("b")
        simulator.run(until=5.0)
        assert b.received == []

    def test_unblock_restores_communication(self, simulator, network, two_nodes):
        a, b = two_nodes
        network.block("b")
        network.unblock("b")
        network.send("a", "b", "x", 10)
        simulator.run(until=1.0)
        assert len(b.received) == 1

    def test_is_blocked_and_listing(self, network, two_nodes):
        network.block("a")
        assert network.is_blocked("a")
        assert network.blocked_identities() == {"a"}
        network.unblock("a")
        assert not network.is_blocked("a")
        assert network.blocked_identities() == set()
