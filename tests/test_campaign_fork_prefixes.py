"""Prefix-fork campaign acceleration: the digest-parity proof harness.

The contract under test: ``CampaignRunner(fork_prefixes=True)`` simulates
each shared baseline prefix once, checkpoints it, forks every attack
suffix — and every forked run is *bit-identical* (same RunMetrics digest,
same event counts, same exported rows) to simulating the point from
scratch.  Alongside the parity suites live the grouping laws
(``plan_fork_groups`` only merges prefix-invariant axes), the fault-window
refusal pin, kill/resume checkpoint reuse through the CLI, and the service
broker's prefix-affinity leasing.
"""

import random

import pytest

from repro import units
from repro.api import AdversarySpec, Campaign, CampaignRunner, ResultStore, Scenario, Session
from repro.api.campaign import attack_onset, plan_fork_groups, prefix_key
from repro.api.scenario import canonical_json
from repro.api.session import build_point_world
from repro.cli import main
from repro.experiments.bench import bench_configs
from repro.experiments.composed import (
    adaptive_attack_campaign,
    combined_attack_campaign,
    delayed_attack_campaign,
)
from repro.replay.checkpoint import Checkpoint, CheckpointError
from repro.service.broker import Broker, Lease
from repro.service.http_api import ExperimentService
from repro.service.sqlite_store import SQLiteResultStore
from repro.service.worker import LocalBrokerClient, Worker


def delayed_scenario(
    name="delayed-fork",
    seeds=(1,),
    faults=None,
    onset_day=45.0,
    duration=units.months(5),
):
    """A pipe-stoppage attacker that lurks for ``onset_day`` days, then strikes."""
    return Scenario(
        name=name,
        base="smoke",
        sim={"duration": duration},
        adversary=AdversarySpec(
            "composed",
            {
                "node_id": "delayed-adversary",
                "targeting": {"kind": "random_subset", "coverage": 1.0},
                "schedule": {
                    "kind": "piecewise",
                    "phases": [
                        {"duration_days": onset_day, "intensity": 0.0, "gap_days": 0.0},
                        {"duration_days": 20.0, "intensity": 1.0, "gap_days": 10.0},
                    ],
                    "repeat": True,
                },
                "vectors": [{"kind": "pipe_stoppage"}],
            },
        ),
        faults=dict(faults or {}),
        seeds=tuple(seeds),
    )


def delayed_campaign(coverages=(0.4, 1.0), name="delayed-fork", **kwargs):
    campaign = Campaign(name=name, scenario=delayed_scenario(name=name, **kwargs))
    campaign.add_axis(**{"adversary.targeting.coverage": list(coverages)})
    return campaign


def result_blobs(results):
    """Canonical JSON of every point result — covers per-run metrics digests,
    event counts, and everything the row exporters derive from."""
    return [canonical_json(point.result.to_dict()) for point in results]


def assert_fork_parity(campaign, store_path, workers=1):
    """Full runs vs prefix-forked runs must agree bit for bit."""
    if workers > 1:
        with Session(workers=workers) as session:
            full = CampaignRunner(session).run(campaign)
        forked_session = Session(workers=workers, store=str(store_path))
        with forked_session:
            forked = CampaignRunner(forked_session, fork_prefixes=True).run(campaign)
    else:
        full = CampaignRunner(Session()).run(campaign)
        forked_session = Session(store=str(store_path))
        forked = CampaignRunner(forked_session, fork_prefixes=True).run(campaign)
    assert len(full) == len(forked) == len(campaign)
    assert result_blobs(full) == result_blobs(forked)
    return forked_session


class TestForkParity:
    """Satellite: the digest-parity contract across campaign families."""

    def test_delayed_sweep_parity_across_three_seeds(self, tmp_path):
        campaign = delayed_campaign(seeds=(1, 2, 3))
        groups = plan_fork_groups(campaign.expand())
        assert len(groups) == 3  # one shared prefix per seed
        assert all(g.fork_time == 45.0 * units.DAY for g in groups)
        session = assert_fork_parity(campaign, tmp_path / "store")
        # one persisted checkpoint per (seed, prefix) group
        assert len(session.store.checkpoint_digests()) == 3

    def test_churn_faulted_prefix_parity(self, tmp_path):
        # Faults are environment: they belong to the prefix and fork fine.
        campaign = delayed_campaign(
            seeds=(1, 2),
            faults={"churn": {"rate_per_peer_per_year": 6.0, "mean_downtime_days": 5.0}},
        )
        assert len(plan_fork_groups(campaign.expand())) == 2
        session = assert_fork_parity(campaign, tmp_path / "store")
        assert len(session.store.checkpoint_digests()) == 2

    def test_onset_zero_families_fall_back_to_full_runs(self, tmp_path):
        # combined and adaptive attacks strike at t=0: nothing to fork,
        # fork_prefixes must degrade to plain full runs with equal digests.
        protocol, sim = bench_configs(duration=units.months(3))
        for maker, axis in (
            (combined_attack_campaign, {"coverages": (0.4, 1.0)}),
            (adaptive_attack_campaign, {"thresholds": (0.05, 0.95)}),
        ):
            campaign = maker(
                seeds=(1,), protocol_config=protocol, sim_config=sim, **axis
            )
            assert plan_fork_groups(campaign.expand()) == []
            session = assert_fork_parity(
                campaign, tmp_path / ("store-" + campaign.name)
            )
            assert session.store.checkpoint_digests() == []

    def test_forked_serial_equals_forked_pool(self, tmp_path):
        campaign = delayed_campaign(seeds=(1, 2))
        serial = CampaignRunner(
            Session(store=str(tmp_path / "serial")), fork_prefixes=True
        ).run(campaign)
        with Session(workers=2, store=str(tmp_path / "pool")) as session:
            pooled = CampaignRunner(session, fork_prefixes=True).run(campaign)
        assert result_blobs(serial) == result_blobs(pooled)

    def test_delayed_attack_campaign_shape(self):
        # The bench family itself plans one group per seed covering every
        # coverage, forking at the configured onset.
        protocol, sim = bench_configs(duration=units.months(9))
        campaign = delayed_attack_campaign(
            seeds=(1,), protocol_config=protocol, sim_config=sim
        )
        points = campaign.expand()
        assert attack_onset(points[0].scenario) == 165.0 * units.DAY
        groups = plan_fork_groups(points)
        assert len(groups) == 1
        attacked = [spec for _, spec in groups[0].members if spec is not None]
        assert len(attacked) == 5


class TestForkGrouping:
    """Satellite: grouping laws over randomized prefix/suffix axis grids."""

    PREFIX_AXES = [
        {"protocol.quorum": [3, 5]},
        {"faults.churn.rate_per_peer_per_year": [4.0, 12.0]},
        {"sim.duration": [units.months(5), units.months(6)]},
    ]
    SUFFIX_AXES = [
        {"adversary.targeting.coverage": [0.25, 0.5, 1.0]},
        {"adversary.vectors.0.kind": ["pipe_stoppage", "admission_flood"]},
    ]

    @staticmethod
    def _axis_names(axes):
        return [name for axis in axes for name in axis]

    def test_grouping_laws_over_random_axis_grids(self):
        rng = random.Random(0xF08C)
        for trial in range(25):
            suffix = rng.sample(self.SUFFIX_AXES, rng.randint(1, 2))
            prefix = rng.sample(self.PREFIX_AXES, rng.randint(0, 2))
            seeds = tuple(range(1, rng.randint(1, 3) + 1))
            campaign = Campaign(
                name="grid-%d" % trial,
                scenario=delayed_scenario(
                    seeds=seeds,
                    faults={"churn": {"rate_per_peer_per_year": 4.0}},
                ),
            )
            order = suffix + prefix
            rng.shuffle(order)
            for axis in order:
                campaign.add_axis(**axis)
            points = campaign.expand()
            groups = plan_fork_groups(points)

            suffix_size = 1
            for axis in suffix:
                suffix_size *= len(next(iter(axis.values())))
            prefix_size = 1
            for axis in prefix:
                prefix_size *= len(next(iter(axis.values())))

            # Law 1: exactly one group per (seed, prefix-combination); only
            # prefix-invariant axes ever share a checkpoint.
            assert len(groups) == len(seeds) * prefix_size
            assert len({(g.seed, g.members[0][0]) for g in groups}) == len(groups)

            baseline_of = {}
            for point in points:
                for seed in point.scenario.seeds:
                    attacked = point.scenario.point_digest(seed, baseline=False)
                    baseline_of[attacked] = (
                        seed,
                        point.scenario.point_digest(seed, baseline=True),
                        prefix_key(point.scenario),
                    )
            for group in groups:
                prefix_digest = group.members[0][0]
                assert group.members[0][1] is None
                attacked = [m for m in group.members[1:] if m[1] is not None]
                # Law 2: a group covers the full suffix sweep (>= 2 members).
                assert len(attacked) == suffix_size >= 2
                for digest, _spec in attacked:
                    seed, baseline, _key = baseline_of[digest]
                    # Law 3: every member shares the group's baseline prefix.
                    assert seed == group.seed
                    assert baseline == prefix_digest

            # Law 4: prefix_key separates points exactly along prefix axes.
            keys = {prefix_key(point.scenario) for point in points}
            assert len(keys) == prefix_size

    def test_prefix_only_sweep_plans_no_groups(self):
        # A single suffix point per prefix would fork alone: prefix-touching
        # sweeps therefore run fully, with no checkpoint planned at all.
        campaign = Campaign(
            name="prefix-only",
            scenario=delayed_scenario(
                faults={"churn": {"rate_per_peer_per_year": 4.0}}
            ),
        )
        campaign.add_axis(**{"faults.churn.rate_per_peer_per_year": [4.0, 12.0]})
        assert plan_fork_groups(campaign.expand()) == []

    def test_unforkable_points_are_excluded(self):
        # No adversary at all -> nothing to fork.
        bare = Scenario(
            name="bare", base="smoke", sim={"duration": units.months(5)}, seeds=(1,)
        )
        campaign = Campaign(name="bare", scenario=bare)
        campaign.add_axis(**{"sim.n_aus": [1, 2]})
        assert plan_fork_groups(campaign.expand()) == []
        # Onset at t=0 (plain on_off schedule) -> provably nothing to skip.
        protocol, sim = bench_configs(duration=units.months(3))
        zero = combined_attack_campaign(
            coverages=(0.4, 1.0), seeds=(1,), protocol_config=protocol, sim_config=sim
        )
        assert attack_onset(zero.expand()[0].scenario) == 0.0
        assert plan_fork_groups(zero.expand()) == []


class TestFaultWindowRefusal:
    """Satellite: forking refuses fault windows that open before the fork."""

    @staticmethod
    def _checkpoint(day=50.0):
        scenario = Scenario(
            name="refusal", base="smoke", sim={"duration": units.months(5)}, seeds=(1,)
        )
        world = build_point_world(scenario, 1, baseline=True)
        return Checkpoint.capture_at(world, day * units.DAY)

    def test_churn_window_before_fork_point_is_refused(self):
        checkpoint = self._checkpoint(day=50.0)
        with pytest.raises(CheckpointError, match="churn section opens at day 10"):
            checkpoint.fork(
                fault_plan={
                    "churn": {"rate_per_peer_per_year": 4.0, "start_day": 10.0}
                }
            )

    def test_crash_and_partition_windows_are_named(self):
        checkpoint = self._checkpoint(day=50.0)
        with pytest.raises(CheckpointError, match="crash section opens at day 1"):
            checkpoint.fork(
                fault_plan={
                    "crash": {"rate_per_peer_per_year": 4.0, "start_day": 1.0}
                }
            )
        with pytest.raises(
            CheckpointError, match="partition window 0 opens at day 20"
        ):
            checkpoint.fork(
                fault_plan={"partitions": [{"start_day": 20.0, "duration_days": 5.0}]}
            )

    def test_window_opening_at_or_after_fork_point_is_accepted(self):
        checkpoint = self._checkpoint(day=50.0)
        world = checkpoint.fork(
            fault_plan={"churn": {"rate_per_peer_per_year": 4.0, "start_day": 50.0}}
        )
        assert world.fault_engine is not None


class TestKillResume:
    """Satellite: an interrupted --fork-prefixes campaign resumes from the
    persisted prefix checkpoint without re-simulating it."""

    def test_cli_resume_reuses_persisted_checkpoint(self, tmp_path, capsys, monkeypatch):
        campaign = delayed_campaign(coverages=(0.3, 0.6, 1.0), duration=units.months(4))
        path = campaign.save(tmp_path / "campaign.json")
        store_full = str(tmp_path / "uninterrupted")
        store_killed = str(tmp_path / "killed")

        assert main(["campaign", "run", str(path), "--store", store_full,
                     "--fork-prefixes"]) == 0
        assert main(["campaign", "run", str(path), "--store", store_killed,
                     "--fork-prefixes", "--max-points", "1"]) == 0
        capsys.readouterr()
        # The prefix checkpoint outlived the "kill".
        assert len(ResultStore(store_killed).checkpoint_digests()) == 1

        captures = []
        real_capture_at = Checkpoint.capture_at.__func__

        def counting_capture_at(cls, world, time):
            captures.append(time)
            return real_capture_at(cls, world, time)

        monkeypatch.setattr(
            Checkpoint, "capture_at", classmethod(counting_capture_at)
        )
        assert main(["campaign", "resume", str(path), "--store", store_killed,
                     "--fork-prefixes"]) == 0
        assert "3 points complete" in capsys.readouterr().out
        # The completed prefix was never re-simulated on resume.
        assert captures == []

        full_store = ResultStore(store_full)
        killed_store = ResultStore(store_killed)
        for point in campaign.expand():
            left = full_store.load_json("result", point.digest)
            right = killed_store.load_json("result", point.digest)
            assert left is not None
            assert canonical_json(left) == canonical_json(right)


class TestBrokerPrefixAffinity:
    """Service layer: prefix-stamped points, affinity leasing, /spec route."""

    @staticmethod
    def _two_prefix_campaign():
        campaign = Campaign(
            name="affinity",
            scenario=delayed_scenario(
                name="affinity",
                faults={"churn": {"rate_per_peer_per_year": 4.0}},
            ),
        )
        campaign.add_axis(**{"faults.churn.rate_per_peer_per_year": [4.0, 12.0]})
        campaign.add_axis(**{"adversary.targeting.coverage": [0.3, 1.0]})
        return campaign

    def test_submit_stamps_prefixes(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "svc.db")
        broker = Broker(store, lease_seconds=30.0)
        digest = broker.submit(self._two_prefix_campaign())["digest"]
        rows = store.execute(
            "SELECT idx, prefix FROM broker_points WHERE campaign=? ORDER BY idx",
            (digest,),
        ).fetchall()
        prefixes = [prefix for _, prefix in rows]
        assert all(prefixes)
        # First axis is outermost: points 0/1 share one prefix, 2/3 the other.
        assert prefixes[0] == prefixes[1] != prefixes[2] == prefixes[3]

        # Unforkable campaigns carry NULL prefixes.
        protocol, sim = bench_configs(duration=units.months(3))
        zero = combined_attack_campaign(
            coverages=(0.4, 1.0), seeds=(1,), protocol_config=protocol, sim_config=sim
        )
        zero_digest = broker.submit(zero)["digest"]
        zero_rows = store.execute(
            "SELECT prefix FROM broker_points WHERE campaign=?", (zero_digest,)
        ).fetchall()
        assert [prefix for (prefix,) in zero_rows] == [None, None]

    def test_lease_keeps_one_worker_per_prefix_group(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "svc.db")
        broker = Broker(store, lease_seconds=30.0)
        broker.submit(self._two_prefix_campaign())

        first = broker.lease("w1")
        assert first.index == 0 and first.prefix
        # w2 avoids the prefix w1 is actively inside: it skips point 1.
        second = broker.lease("w2")
        assert second.index == 2
        assert second.prefix != first.prefix
        # w1 sticks with its own prefix group.
        third = broker.lease("w1")
        assert third.index == 1 and third.prefix == first.prefix
        fourth = broker.lease("w2")
        assert fourth.index == 3 and fourth.prefix == second.prefix
        assert broker.lease("w3") is None

        # The prefix survives the wire format.
        payload = first.to_dict()
        assert payload["prefix"] == first.prefix
        assert Lease.from_dict(payload).prefix == first.prefix

    def test_spec_route_round_trips_the_campaign(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "svc.db")
        service = ExperimentService(store, lease_seconds=10.0)
        campaign = self._two_prefix_campaign()
        status, submitted = service.handle("POST", "/api/campaigns", campaign.to_dict())
        assert status == 200
        digest = submitted["digest"]

        status, payload = service.handle("GET", "/api/campaigns/%s/spec" % digest)
        assert status == 200
        restored = Campaign.from_dict(payload["campaign"])
        assert restored.digest == campaign.digest
        assert service.handle("GET", "/api/campaigns/%s/spec" % ("ab" * 32))[0] == 404

    def test_fork_prefix_worker_reuses_one_checkpoint(self, tmp_path):
        campaign = delayed_campaign(
            name="svc-fork", coverages=(0.3, 0.6, 1.0), duration=units.months(4)
        )
        full_store = str(tmp_path / "full")
        CampaignRunner(Session(store=full_store)).run(campaign)

        store = SQLiteResultStore(tmp_path / "svc.db")
        broker = Broker(store, lease_seconds=30.0)
        broker.submit(campaign)
        events = []
        worker = Worker(
            LocalBrokerClient(broker),
            Session(store=store),
            worker_id="w1",
            fork_prefixes=True,
            on_event=events.append,
        )
        summary = worker.run()
        assert summary["completed"] == 3
        assert sum("forking" in event for event in events) == 3
        # Affinity keeps the group on one worker; all three forks shared
        # the single persisted prefix checkpoint.
        assert len(store.checkpoint_digests()) == 1

        rows_full = CampaignRunner(Session(store=full_store)).rows(campaign)
        rows_svc = CampaignRunner(Session(store=store)).rows(campaign)
        assert canonical_json(rows_full) == canonical_json(rows_svc)
