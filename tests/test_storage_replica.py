"""Unit tests for block-level replica damage tracking."""

import pytest

from repro import units
from repro.storage.au import ArchivalUnit
from repro.storage.replica import Replica, ReplicaSet


@pytest.fixture
def au():
    return ArchivalUnit("au-1", size_bytes=8 * units.MB, block_size=units.MB)


class TestReplicaDamage:
    def test_new_replica_is_undamaged(self, au):
        replica = Replica(au, owner="p1")
        assert not replica.is_damaged
        assert replica.damaged_blocks == set()

    def test_damage_block_marks_replica_damaged(self, au):
        replica = Replica(au, owner="p1")
        replica.damage_block(3)
        assert replica.is_damaged
        assert replica.damaged_blocks == {3}
        assert replica.damage_events == 1

    def test_damage_out_of_range_rejected(self, au):
        replica = Replica(au, owner="p1")
        with pytest.raises(IndexError):
            replica.damage_block(99)

    def test_independent_damage_gets_distinct_tags(self, au):
        a = Replica(au, owner="p1")
        b = Replica(au, owner="p2")
        a.damage_block(0)
        b.damage_block(0)
        assert a.damage_tag(0) != b.damage_tag(0)

    def test_repair_from_good_source_restores_canonical(self, au):
        replica = Replica(au, owner="p1")
        replica.damage_block(2)
        replica.repair_block(2, source_tag=None)
        assert not replica.is_damaged
        assert replica.repair_events == 1

    def test_repair_from_damaged_source_copies_damage(self, au):
        good = Replica(au, owner="good")
        bad_source = Replica(au, owner="bad")
        tag = bad_source.damage_block(1)
        good.damage_block(1)
        good.repair_block(1, source_tag=tag)
        assert good.is_damaged
        assert good.damage_tag(1) == tag
        assert good.agrees_on_block(bad_source, 1)

    def test_repair_out_of_range_rejected(self, au):
        replica = Replica(au, owner="p1")
        with pytest.raises(IndexError):
            replica.repair_block(99)


class TestReplicaComparison:
    def test_undamaged_replicas_match(self, au):
        a = Replica(au, owner="p1")
        b = Replica(au, owner="p2")
        assert a.matches(b)
        assert a.disagreement_blocks(b) == set()

    def test_damage_creates_disagreement(self, au):
        a = Replica(au, owner="p1")
        b = Replica(au, owner="p2")
        a.damage_block(5)
        assert not a.matches(b)
        assert a.disagreement_blocks(b) == {5}
        assert not a.agrees_on_block(b, 5)
        assert a.agrees_on_block(b, 0)

    def test_disagreement_is_symmetric(self, au):
        a = Replica(au, owner="p1")
        b = Replica(au, owner="p2")
        a.damage_block(1)
        b.damage_block(2)
        assert a.disagreement_blocks(b) == b.disagreement_blocks(a) == {1, 2}

    def test_same_tag_means_agreement(self, au):
        a = Replica(au, owner="p1")
        b = Replica(au, owner="p2")
        tag = a.damage_block(4)
        b.damage_block(4, tag=tag)
        assert a.agrees_on_block(b, 4)
        assert a.matches(b)


class TestReplicaSet:
    def test_add_and_get(self, au):
        replicas = ReplicaSet("p1")
        replica = replicas.add(au)
        assert replicas.get("au-1") is replica
        assert "au-1" in replicas
        assert len(replicas) == 1
        assert list(replicas.au_ids()) == ["au-1"]

    def test_duplicate_add_rejected(self, au):
        replicas = ReplicaSet("p1")
        replicas.add(au)
        with pytest.raises(ValueError):
            replicas.add(au)

    def test_damaged_count(self, au):
        replicas = ReplicaSet("p1")
        other = ArchivalUnit("au-2", size_bytes=2 * units.MB, block_size=units.MB)
        replicas.add(au)
        replicas.add(other)
        assert replicas.damaged_count() == 0
        replicas.get("au-1").damage_block(0)
        assert replicas.damaged_count() == 1

    def test_iteration(self, au):
        replicas = ReplicaSet("p1")
        replicas.add(au)
        assert [r.au.au_id for r in replicas] == ["au-1"]
