"""Unit tests for the declarative Scenario API (JSON round-trip, digests,
sweep expansion, config resolution)."""

import json

import pytest

from repro import units
from repro.api import AdversarySpec, Scenario, config_digest
from repro.config import smoke_config


def make_scenario(**overrides):
    fields = dict(
        name="test scenario",
        base="smoke",
        protocol={"quorum": 4},
        sim={"duration": units.months(6), "n_peers": 12},
        adversary=AdversarySpec(
            "pipe_stoppage", {"attack_duration_days": 30.0, "coverage": 1.0}
        ),
        seeds=(1, 2),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestRoundTrip:
    def test_json_round_trip_preserves_fields(self):
        scenario = make_scenario(
            sweep={"adversary.coverage": [0.4, 1.0]},
            parameters={"note": "x"},
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored.name == scenario.name
        assert restored.base == scenario.base
        assert restored.protocol == scenario.protocol
        assert restored.sim == scenario.sim
        assert restored.adversary == scenario.adversary
        assert restored.seeds == scenario.seeds
        assert restored.sweep == scenario.sweep
        assert restored.parameters == scenario.parameters

    def test_json_round_trip_preserves_digest(self):
        scenario = make_scenario()
        assert Scenario.from_json(scenario.to_json()).digest == scenario.digest

    def test_round_trip_through_file(self, tmp_path):
        scenario = make_scenario()
        path = scenario.save(tmp_path / "scenario.json")
        assert Scenario.load(path).digest == scenario.digest

    def test_tuple_fields_survive_json(self):
        scenario = make_scenario(
            sim={"link_bandwidths": [units.mbps(1.5), units.mbps(10)]}
        )
        restored = Scenario.from_json(scenario.to_json())
        _, sim = restored.resolve()
        assert sim.link_bandwidths == (units.mbps(1.5), units.mbps(10))

    def test_adversary_dict_is_promoted_to_spec(self):
        scenario = make_scenario(
            adversary={"kind": "pipe_stoppage", "params": {"coverage": 0.4}}
        )
        assert isinstance(scenario.adversary, AdversarySpec)
        assert scenario.adversary.kind == "pipe_stoppage"


class TestDigest:
    def test_digest_ignores_the_name(self):
        assert make_scenario(name="a").digest == make_scenario(name="b").digest

    def test_digest_ignores_base_vs_override_spelling(self):
        # The same resolved experiment must hash identically whether it is
        # spelled as a base reference or as explicit overrides.
        spelled_with_base = make_scenario(adversary=None)
        protocol, sim = spelled_with_base.resolve()
        spelled_explicitly = Scenario.from_configs(
            "other name", protocol, sim, seeds=spelled_with_base.seeds
        )
        assert spelled_explicitly.base != spelled_with_base.base
        assert spelled_explicitly.digest == spelled_with_base.digest

    def test_digest_changes_with_config_fields(self):
        assert make_scenario().digest != make_scenario(protocol={"quorum": 5}).digest

    def test_digest_changes_with_seeds_and_adversary(self):
        base = make_scenario()
        assert base.digest != make_scenario(seeds=(1,)).digest
        assert base.digest != make_scenario(adversary=None).digest
        assert (
            base.digest
            != make_scenario(
                adversary=AdversarySpec("pipe_stoppage", {"coverage": 0.4})
            ).digest
        )

    def test_digest_merges_registry_defaults(self):
        # Omitting an adversary parameter and spelling out its registry
        # default describe the same simulation, so they hash identically.
        implicit = make_scenario(adversary=AdversarySpec("pipe_stoppage", {}))
        explicit = make_scenario(
            adversary=AdversarySpec(
                "pipe_stoppage",
                {
                    "attack_duration_days": 30.0,
                    "coverage": 1.0,
                    "recuperation_days": 30.0,
                },
            )
        )
        assert implicit.digest == explicit.digest
        assert implicit.point_digest(1) == explicit.point_digest(1)
        # Unregistered kinds hash over the raw spec without error.
        custom = make_scenario(adversary=AdversarySpec("not_registered", {"x": 1}))
        assert custom.digest != implicit.digest

    def test_digest_is_stable_against_dict_ordering(self):
        a = make_scenario(sim={"n_peers": 12, "duration": units.months(6)})
        b = make_scenario(sim={"duration": units.months(6), "n_peers": 12})
        assert a.digest == b.digest

    def test_config_digest_differs_from_repr_instability(self):
        # The digest depends only on field values, so two structurally equal
        # configs always share it.
        protocol, sim = smoke_config()
        assert config_digest(protocol, sim, seeds=(1,)) == config_digest(
            protocol.with_overrides(), sim.with_overrides(), seeds=(1,)
        )

    def test_baseline_point_digest_drops_the_adversary(self):
        scenario = make_scenario(seeds=(7,))
        attacked = scenario.point_digest(7, baseline=False)
        baseline = scenario.point_digest(7, baseline=True)
        assert attacked != baseline
        assert baseline == make_scenario(seeds=(7,), adversary=None).point_digest(7)


class TestResolve:
    def test_overrides_are_applied(self):
        protocol, sim = make_scenario().resolve()
        assert protocol.quorum == 4
        assert sim.n_peers == 12
        assert sim.duration == units.months(6)

    def test_seed_override(self):
        _, sim = make_scenario().resolve(seed=99)
        assert sim.seed == 99

    def test_unknown_base_is_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", base="nope")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", base="smoke", seeds=())

    def test_from_configs_round_trips_configs(self):
        protocol, sim = smoke_config()
        sim = sim.with_overrides(duration=units.months(5), n_aus=1)
        scenario = Scenario.from_configs("rt", protocol, sim, seeds=(3,))
        resolved_protocol, resolved_sim = scenario.resolve()
        assert resolved_protocol == protocol
        assert resolved_sim == sim


class TestSweepExpansion:
    def test_point_scenario_expands_to_itself(self):
        scenario = make_scenario()
        points = scenario.expand()
        assert len(points) == 1
        assert points[0].digest == scenario.digest

    def test_axis_order_first_axis_outermost(self):
        scenario = make_scenario(
            sweep={
                "adversary.coverage": [0.4, 1.0],
                "adversary.attack_duration_days": [30.0, 60.0],
            }
        )
        points = scenario.expand()
        combos = [
            (p.parameters["coverage"], p.parameters["attack_duration_days"])
            for p in points
        ]
        assert combos == [(0.4, 30.0), (0.4, 60.0), (1.0, 30.0), (1.0, 60.0)]

    def test_expansion_merges_axes_into_specs(self):
        scenario = make_scenario(
            sweep={"sim.n_aus": [1, 2], "protocol.quorum": [3]},
        )
        points = scenario.expand()
        assert [p.sim["n_aus"] for p in points] == [1, 2]
        assert all(p.protocol["quorum"] == 3 for p in points)
        assert all(not p.is_sweep for p in points)
        # The original scenario is not mutated by expansion.
        assert scenario.sim["n_peers"] == 12
        assert "n_aus" not in scenario.sim

    def test_expansion_records_parameters_and_names(self):
        scenario = make_scenario(sweep={"adversary.coverage": [0.4]})
        (point,) = scenario.expand()
        assert point.parameters["coverage"] == 0.4
        assert "coverage=0.4" in point.name

    def test_adversary_axis_without_adversary_fails(self):
        scenario = make_scenario(
            adversary=None, sweep={"adversary.coverage": [1.0]}
        )
        with pytest.raises(ValueError):
            scenario.expand()

    def test_malformed_axis_fails(self):
        scenario = make_scenario(sweep={"bogus": [1]})
        with pytest.raises(ValueError):
            scenario.expand()

    def test_expanded_points_serialize(self):
        scenario = make_scenario(sweep={"adversary.coverage": [0.4, 1.0]})
        for point in scenario.expand():
            assert Scenario.from_json(point.to_json()).digest == point.digest
