"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_time_starts_at_zero(self, simulator):
        assert simulator.now == 0.0

    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule(5.0, order.append, "b")
        simulator.schedule(1.0, order.append, "a")
        simulator.schedule(10.0, order.append, "c")
        simulator.run(until=20.0)
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_scheduling_order(self, simulator):
        order = []
        simulator.schedule(1.0, order.append, 1)
        simulator.schedule(1.0, order.append, 2)
        simulator.schedule(1.0, order.append, 3)
        simulator.run(until=2.0)
        assert order == [1, 2, 3]

    def test_priority_breaks_ties(self, simulator):
        order = []
        simulator.schedule(1.0, order.append, "low", priority=5)
        simulator.schedule(1.0, order.append, "high", priority=-5)
        simulator.run(until=2.0)
        assert order == ["high", "low"]

    def test_clock_advances_to_event_times(self, simulator):
        seen = []
        simulator.schedule(3.5, lambda: seen.append(simulator.now))
        simulator.run(until=10.0)
        assert seen == [3.5]
        assert simulator.now == 10.0

    def test_run_does_not_execute_events_beyond_horizon(self, simulator):
        fired = []
        simulator.schedule(5.0, fired.append, "early")
        simulator.schedule(50.0, fired.append, "late")
        simulator.run(until=10.0)
        assert fired == ["early"]
        assert simulator.pending_events() == 1

    def test_cannot_schedule_in_the_past(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run(until=5.0)
        with pytest.raises(SimulationError):
            simulator.schedule_at(2.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run_are_processed(self, simulator):
        order = []

        def chain(depth):
            order.append(depth)
            if depth < 3:
                simulator.schedule(1.0, chain, depth + 1)

        simulator.schedule(0.0, chain, 0)
        simulator.run(until=10.0)
        assert order == [0, 1, 2, 3]

    def test_events_processed_counter(self, simulator):
        for _ in range(5):
            simulator.schedule(1.0, lambda: None)
        simulator.run(until=2.0)
        assert simulator.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "x")
        handle.cancel()
        simulator.run(until=5.0)
        assert fired == []

    def test_cancel_is_idempotent(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        simulator.run(until=5.0)
        assert simulator.events_processed == 0

    def test_pending_events_ignores_cancelled(self, simulator):
        keep = simulator.schedule(1.0, lambda: None)
        drop = simulator.schedule(2.0, lambda: None)
        drop.cancel()
        assert simulator.pending_events() == 1
        assert not keep.cancelled


class TestStepAndStop:
    def test_step_processes_exactly_one_event(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, 1)
        simulator.schedule(2.0, fired.append, 2)
        assert simulator.step() is True
        assert fired == [1]
        assert simulator.step() is True
        assert fired == [1, 2]
        assert simulator.step() is False

    def test_stop_halts_the_run(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, 1)
        simulator.schedule(2.0, lambda: simulator.stop())
        simulator.schedule(3.0, fired.append, 3)
        simulator.run(until=10.0)
        assert fired == [1]

    def test_cannot_run_backwards(self, simulator):
        simulator.run(until=10.0)
        with pytest.raises(SimulationError):
            simulator.run(until=5.0)


class TestRecurringEvents:
    def test_call_every_fires_repeatedly(self, simulator):
        ticks = []
        simulator.call_every(2.0, lambda: ticks.append(simulator.now))
        simulator.run(until=10.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_call_every_respects_start_and_end(self, simulator):
        ticks = []
        simulator.call_every(1.0, lambda: ticks.append(simulator.now), start=5.0, end=7.0)
        simulator.run(until=20.0)
        assert ticks == [5.0, 6.0, 7.0]

    def test_call_every_cancel_stops_recurrence(self, simulator):
        ticks = []
        handle = simulator.call_every(1.0, lambda: ticks.append(simulator.now))
        simulator.schedule(3.5, handle.cancel)
        simulator.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_call_every_rejects_non_positive_interval(self, simulator):
        with pytest.raises(SimulationError):
            simulator.call_every(0.0, lambda: None)

    def test_recurring_event_reports_next_time(self, simulator):
        handle = simulator.call_every(2.0, lambda: None)
        assert handle.time == 2.0
        simulator.run(until=3.0)
        assert handle.time == 4.0
