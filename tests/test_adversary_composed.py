"""Composed-adversary integration tests.

The load-bearing suite of the strategy API: each legacy monolithic adversary
against its ``ComposedAdversary`` reformulation (identical per-run metric
digests across 3 seeds), the new combined multi-vector and adaptive
vector-switching families end to end, structured-spec digest stability, and
nested per-component campaign axes.
"""

import hashlib

import pytest

from repro import units
from repro.adversary.admission_flood import AdmissionControlAdversary
from repro.adversary.base import AttackSchedule
from repro.adversary.brute_force import BruteForceAdversary, DefectionPoint
from repro.adversary.composed import ComposedAdversary
from repro.adversary.pipe_stoppage import PipeStoppageAdversary
from repro.api import AdversarySpec, Campaign, Scenario, Session
from repro.api.registry import DEFAULT_REGISTRY
from repro.api.scenario import canonical_json
from repro.config import smoke_config
from repro.experiments.world import build_world

SEEDS = (1, 2, 3)


def run_digest(metrics) -> str:
    """Content digest of one run's full RunMetrics payload."""
    return hashlib.sha256(canonical_json(metrics.to_dict()).encode("utf-8")).hexdigest()


def smoke(seed: int, months: float = 4.0):
    protocol, sim = smoke_config(seed=seed)
    return protocol, sim.with_overrides(duration=units.months(months))


def run_with(factory, seed: int):
    protocol, sim = smoke(seed)
    world = build_world(protocol, sim, adversary_factory=factory)
    return world, world.run()


# -- composed equals monolithic ---------------------------------------------------------


def monolithic_pipe_stoppage(world):
    return PipeStoppageAdversary(
        simulator=world.simulator,
        network=world.network,
        rng=world.streams.stream("adversary/pipe-stoppage"),
        schedule=AttackSchedule(
            attack_duration=units.days(30), coverage=0.5, recuperation=units.days(15)
        ),
        victims_pool=world.peer_ids(),
        end_time=world.sim_config.duration,
    )


def monolithic_admission_flood(world):
    return AdmissionControlAdversary(
        simulator=world.simulator,
        network=world.network,
        rng=world.streams.stream("adversary/admission-flood"),
        schedule=AttackSchedule(
            attack_duration=units.days(60), coverage=1.0, recuperation=units.days(15)
        ),
        victims_pool=world.peer_ids(),
        au_ids=[au.au_id for au in world.aus],
        end_time=world.sim_config.duration,
        invitations_per_victim_per_day=8.0,
    )


def monolithic_brute_force(defection):
    def factory(world):
        return BruteForceAdversary(
            simulator=world.simulator,
            network=world.network,
            rng=world.streams.stream("adversary/brute-force"),
            victims=world.peers,
            protocol_config=world.protocol_config,
            cost_model=world.cost_model,
            defection=defection,
            end_time=world.sim_config.duration,
        )

    return factory


class TestComposedEqualsMonolithic:
    """Each legacy adversary vs. its composition: identical run digests."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pipe_stoppage(self, seed):
        composed = DEFAULT_REGISTRY.factory(
            "pipe_stoppage",
            attack_duration_days=30.0,
            coverage=0.5,
            recuperation_days=15.0,
        )
        world, mono = run_with(monolithic_pipe_stoppage, seed)
        composed_world, comp = run_with(composed, seed)
        assert isinstance(composed_world.adversary, ComposedAdversary)
        assert run_digest(mono) == run_digest(comp)
        # Event counts match exactly, not just the summary metrics.
        assert mono.extras["events_processed"] == comp.extras["events_processed"]
        assert world.adversary.cycles_started == composed_world.adversary.cycles_started

    @pytest.mark.parametrize("seed", SEEDS)
    def test_admission_flood(self, seed):
        composed = DEFAULT_REGISTRY.factory(
            "admission_flood",
            attack_duration_days=60.0,
            coverage=1.0,
            recuperation_days=15.0,
            invitations_per_victim_per_day=8.0,
        )
        world, mono = run_with(monolithic_admission_flood, seed)
        composed_world, comp = run_with(composed, seed)
        assert run_digest(mono) == run_digest(comp)
        assert (
            world.adversary.invitations_sent
            == composed_world.adversary.invitations_sent
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("defection", ["intro", "remaining", "none"])
    def test_brute_force(self, seed, defection):
        composed = DEFAULT_REGISTRY.factory("brute_force", defection=defection)
        world, mono = run_with(
            monolithic_brute_force(DefectionPoint(defection)), seed
        )
        composed_world, comp = run_with(composed, seed)
        assert run_digest(mono) == run_digest(comp)
        assert (
            world.adversary.invitations_admitted
            == composed_world.adversary.invitations_admitted
        )
        assert world.adversary.votes_received == composed_world.adversary.votes_received


# -- the new scenario families ----------------------------------------------------------


def composed_spec(**params) -> AdversarySpec:
    return AdversarySpec("composed", params)


class TestCombinedAttack:
    def combined_factory(self, vectors):
        return DEFAULT_REGISTRY.factory(
            "composed",
            targeting={"kind": "random_subset", "coverage": 1.0},
            schedule={
                "kind": "on_off",
                "attack_duration_days": 30.0,
                "recuperation_days": 30.0,
            },
            vectors=vectors,
            node_id="combined-adversary",
        )

    FLOOD = {"kind": "admission_flood", "invitations_per_victim_per_day": 6.0}
    BRUTE = {"kind": "brute_force_poll", "attempts_per_victim_au_per_day": 5.0}

    def refractory_triggers(self, world):
        return sum(
            peer.au_state(au.au_id).admission.refractory.triggers
            for peer in world.peers
            for au in world.aus
        )

    def test_multi_vector_stack_runs_both_vectors(self):
        world, metrics = run_with(
            self.combined_factory([self.FLOOD, self.BRUTE]), seed=3
        )
        adversary = world.adversary
        # Both vectors engaged in every begun window...
        assert adversary.window_log
        assert all(active == [0, 1] for active in adversary.window_log)
        # ...and both left their fingerprints: the flood trips refractory
        # periods while the effortful solicitations pay real effort.
        assert adversary.vectors[0].invitations_sent > 0
        assert adversary.vectors[1].invitations_sent > 0
        assert self.refractory_triggers(world) > 0
        assert metrics.adversary_effort > 0  # the brute-force half is paid for

    def test_vectors_genuinely_interact(self):
        """The concurrent flood degrades the brute-force vector's admissions.

        This is the point of a *combined* protocol-level attack — and the
        regression guard against compositions whose vectors cancel each
        other out (a blackout, for instance, would drop the flood's own
        invitations; see combined_attack_campaign's docstring).
        """
        combined_world, _ = run_with(
            self.combined_factory([self.FLOOD, self.BRUTE]), seed=3
        )
        brute_alone_world, _ = run_with(self.combined_factory([self.BRUTE]), seed=3)
        flood_alone_world, _ = run_with(self.combined_factory([self.FLOOD]), seed=3)
        # The flood is not suppressed by the brute-force traffic...
        assert combined_world.adversary.vectors[0].invitations_sent > 0
        assert (
            self.refractory_triggers(combined_world)
            > self.refractory_triggers(flood_alone_world)
        )
        # ...and the refractory periods it trips visibly cut into the
        # brute-force vector's admitted invitations.
        combined_brute = combined_world.adversary.vectors[1]
        assert 0 < combined_brute.invitations_admitted < (
            brute_alone_world.adversary.invitations_admitted
        )

    def test_combined_attack_is_digest_stable(self):
        runs = [
            run_with(self.combined_factory([self.FLOOD, self.BRUTE]), seed=2)[1]
            for _ in range(2)
        ]
        assert run_digest(runs[0]) == run_digest(runs[1])


class TestAdaptiveAttack:
    def adaptive_factory(self, threshold):
        return DEFAULT_REGISTRY.factory(
            "composed",
            targeting={"kind": "sticky", "coverage": 1.0},
            schedule={
                "kind": "on_off",
                "attack_duration_days": 20.0,
                "recuperation_days": 10.0,
            },
            vectors=[
                {"kind": "brute_force_poll"},
                {"kind": "pipe_stoppage"},
            ],
            adaptive={
                "kind": "threshold_switch",
                "metric": "admission_rate",
                "threshold": threshold,
                "probe": 0,
                "escalation": 1,
                "grace_windows": 1,
            },
            node_id="adaptive-adversary",
        )

    def test_high_threshold_switches_to_escalation_vector(self):
        world, _ = run_with(self.adaptive_factory(1.1), seed=3)
        log = world.adversary.window_log
        assert log[0] == [0]  # probe window
        assert [1] in log  # the switch happened
        assert log[-1] == [1]  # and it is permanent

    def test_zero_threshold_never_switches(self):
        world, _ = run_with(self.adaptive_factory(0.0), seed=3)
        assert all(active == [0] for active in world.adversary.window_log)

    def test_switching_changes_the_outcome_deterministically(self):
        _, switched = run_with(self.adaptive_factory(1.1), seed=3)
        _, probing = run_with(self.adaptive_factory(0.0), seed=3)
        assert run_digest(switched) != run_digest(probing)
        _, switched_again = run_with(self.adaptive_factory(1.1), seed=3)
        assert run_digest(switched) == run_digest(switched_again)


# -- structured specs in scenarios and campaigns -----------------------------------------


class TestStructuredSpecs:
    def scenario(self, params, name="composed-smoke", seeds=(1,)):
        protocol, sim = smoke(1)
        return Scenario.from_configs(
            name, protocol, sim, adversary=composed_spec(**params), seeds=seeds
        )

    def test_scenario_round_trips_through_json(self):
        scenario = self.scenario(
            {
                "targeting": {"kind": "sticky", "coverage": 0.5},
                "vectors": [{"kind": "pipe_stoppage"}, {"kind": "effort_attrition"}],
                "adaptive": {"kind": "rotate"},
            }
        )
        loaded = Scenario.from_json(scenario.to_json())
        assert loaded.adversary.params == scenario.adversary.params
        assert loaded.digest == scenario.digest

    def test_digest_ignores_spelled_out_component_defaults(self):
        implicit = self.scenario({"vectors": [{"kind": "admission_flood"}]})
        explicit = self.scenario(
            {
                "targeting": {"kind": "random_subset", "coverage": 1.0},
                "schedule": {
                    "kind": "on_off",
                    "attack_duration_days": 30.0,
                    "recuperation_days": 30.0,
                    "intensity": 1.0,
                },
                "vectors": [
                    {
                        "kind": "admission_flood",
                        "invitations_per_victim_per_day": 4.0,
                        "identity_pool_size": 400,
                        "identity_prefix": "unknown",
                    }
                ],
                "adaptive": {"kind": "all"},
            }
        )
        assert implicit.digest == explicit.digest

    def test_different_compositions_hash_differently(self):
        pipe = self.scenario({"vectors": [{"kind": "pipe_stoppage"}]})
        flood = self.scenario({"vectors": [{"kind": "admission_flood"}]})
        assert pipe.digest != flood.digest

    def test_structured_scenario_runs_through_a_session(self):
        scenario = self.scenario(
            {
                "vectors": [{"kind": "pipe_stoppage"}],
                "schedule": {"kind": "on_off", "attack_duration_days": 45.0},
            }
        )
        result = Session().run(scenario)
        assert result.attacked_runs[0].failed_polls >= 0
        assert result.scenario_digest == scenario.digest

    def test_unknown_component_kind_fails_at_build_time(self):
        scenario = self.scenario({"vectors": [{"kind": "zero_day"}]})
        with pytest.raises(KeyError):
            Session().run(scenario)


class TestNestedCampaignAxes:
    def base_campaign(self):
        protocol, sim = smoke(1)
        scenario = Scenario.from_configs(
            "matrix",
            protocol,
            sim,
            adversary=composed_spec(
                targeting={"kind": "random_subset", "coverage": 0.5},
                vectors=[{"kind": "pipe_stoppage"}],
            ),
            seeds=(1,),
        )
        campaign = Campaign(name="matrix", scenario=scenario)
        campaign.add_axis(**{"adversary.targeting.kind": ["random_subset", "sticky"]})
        campaign.add_axis(
            **{"adversary.vectors.0.kind": ["pipe_stoppage", "admission_flood"]}
        )
        return campaign

    def test_expansion_mutates_nested_components(self):
        points = self.base_campaign().expand()
        assert len(points) == 4
        kinds = [
            (
                point.scenario.adversary.params["targeting"]["kind"],
                point.scenario.adversary.params["vectors"][0]["kind"],
            )
            for point in points
        ]
        assert kinds == [
            ("random_subset", "pipe_stoppage"),
            ("random_subset", "admission_flood"),
            ("sticky", "pipe_stoppage"),
            ("sticky", "admission_flood"),
        ]
        assert len({point.digest for point in points}) == 4
        # Axis values are recorded as dotted row labels.
        assert points[0].parameters["targeting.kind"] == "random_subset"
        assert points[0].parameters["vectors.0.kind"] == "pipe_stoppage"

    def test_axis_into_an_omitted_component_merges_into_its_default(self):
        """Sweeping e.g. adversary.targeting.coverage must not require the
        spec to spell the targeting component out: the kindless partial the
        axis produces merges into the composition default (random_subset).
        """
        protocol, sim = smoke(1)
        scenario = Scenario.from_configs(
            "partial",
            protocol,
            sim,
            adversary=composed_spec(vectors=[{"kind": "pipe_stoppage"}]),
            seeds=(1,),
        )
        campaign = Campaign(name="partial", scenario=scenario)
        campaign.add_axis(**{"adversary.targeting.coverage": [0.2, 0.5]})
        points = campaign.expand()
        assert len({point.digest for point in points}) == 2
        # The partial spec hashes like the spelled-out equivalent...
        explicit = Scenario.from_configs(
            "partial",
            protocol,
            sim,
            adversary=composed_spec(
                targeting={"kind": "random_subset", "coverage": 0.2},
                vectors=[{"kind": "pipe_stoppage"}],
            ),
            seeds=(1,),
        )
        assert points[0].scenario.digest == explicit.digest
        # ...and builds (and runs) as random_subset at the swept coverage.
        result = Session().run(points[0].scenario)
        assert result.scenario_digest == points[0].digest

    def test_points_do_not_share_nested_spec_structure(self):
        campaign = self.base_campaign()
        points = campaign.expand()
        points[0].scenario.adversary.params["targeting"]["coverage"] = 0.123
        assert points[1].scenario.adversary.params["targeting"]["coverage"] == 0.5
        assert campaign.scenario.adversary.params["targeting"]["coverage"] == 0.5

    def test_campaign_round_trips_through_json(self):
        campaign = self.base_campaign()
        loaded = Campaign.from_json(campaign.to_json())
        assert [point.digest for point in loaded.expand()] == [
            point.digest for point in campaign.expand()
        ]


class TestRngLaneStability:
    def test_vector_lane_survives_sibling_removal(self):
        """Per-component lanes are keyed by kind, not stack position, so
        removing a sibling vector of another kind never re-seeds this one.
        """

        def brute_vector_of(vectors):
            factory = DEFAULT_REGISTRY.factory(
                "composed",
                schedule={"kind": "on_off", "attack_duration_days": 20.0},
                vectors=vectors,
                node_id="lane-stability",
            )
            protocol, sim = smoke(1)
            world = build_world(protocol, sim, adversary_factory=factory)
            for vector in world.adversary.vectors:
                if vector.kind == "brute_force_poll":
                    return vector
            raise AssertionError("no brute_force_poll vector")

        paired = brute_vector_of(
            [{"kind": "admission_flood"}, {"kind": "brute_force_poll"}]
        )
        alone = brute_vector_of([{"kind": "brute_force_poll"}])
        assert paired.rng.random() == alone.rng.random()

    def test_axis_into_missing_vector_list_fails_fast(self):
        """A list-index axis cannot conjure the list: it fails at expansion
        with a pointed message, not later at digest/build time.
        """
        protocol, sim = smoke(1)
        scenario = Scenario.from_configs(
            "no-vectors",
            protocol,
            sim,
            adversary=AdversarySpec("composed", {}),
            seeds=(1,),
        )
        campaign = Campaign(name="no-vectors", scenario=scenario)
        campaign.add_axis(
            **{"adversary.vectors.0.invitations_per_victim_per_day": [4.0, 8.0]}
        )
        with pytest.raises(ValueError, match="spell the list out"):
            campaign.expand()


class TestParallelExecution:
    def test_parallel_equals_serial_for_structured_specs(self):
        """Worker processes rebuild composed adversaries from scenario JSON."""
        campaign = Campaign.load("examples/campaigns/adversary_matrix.json")
        from repro.api.campaign import CampaignRunner

        serial = CampaignRunner(Session(workers=1)).run(campaign)
        with Session(workers=2) as session:
            parallel = CampaignRunner(session).run(campaign)
        serial_runs = [p.result.attacked_runs[0].to_dict() for p in serial]
        parallel_runs = [p.result.attacked_runs[0].to_dict() for p in parallel]
        assert serial_runs == parallel_runs


class TestExampleCampaignFiles:
    @pytest.mark.parametrize(
        "path",
        [
            "examples/campaigns/combined_attack.json",
            "examples/campaigns/adaptive_switch.json",
            "examples/campaigns/adversary_matrix.json",
        ],
    )
    def test_example_campaigns_load_and_expand(self, path):
        campaign = Campaign.load(path)
        points = campaign.expand()
        assert len(points) == len(campaign)
        assert len({point.digest for point in points}) == len(points)
