"""Streaming result sets: lazy loading, iterator surfaces, and the
incremental rows digest."""

import pytest

from repro import units
from repro.api import Campaign, CampaignRunner, ResultStore, Scenario, Session
from repro.api.resultset import ResultSet
from repro.experiments.bench import digest_rows, digest_rows_iter


def run_small_campaign(tmp_path, points=2):
    base = Scenario(
        name="stream test",
        base="smoke",
        sim={"duration": units.months(2)},
        seeds=(1,),
    )
    campaign = Campaign.from_grid(
        "stream", base, {"sim.n_aus": list(range(1, points + 1))}
    )
    runner = CampaignRunner(Session(store=ResultStore(tmp_path / "store")))
    runner.run(campaign)
    return runner, campaign


class TestLazyResultSet:
    def test_loader_and_points_are_exclusive(self):
        with pytest.raises(ValueError):
            ResultSet(points=[], loader=lambda: iter([]))

    def test_len_uses_count_without_loading(self):
        calls = []

        def loader():
            calls.append(1)
            return iter([])

        lazy = ResultSet.lazy(loader, count=7)
        assert len(lazy) == 7
        assert calls == []  # len() never touched the loader

    def test_streaming_surfaces_do_not_materialize(self, tmp_path):
        runner, campaign = run_small_campaign(tmp_path)
        lazy = runner.result_set(campaign, lazy=True)
        rows = list(lazy.iter_rows())
        mean = lazy.aggregate("assessment.access_failure_probability")
        observed = sum(1 for _ in lazy.observations(kinds=("polls",)))
        assert len(rows) == 2
        assert mean >= 0.0
        assert observed > 0
        assert lazy._points is None  # never materialized

    def test_lazy_and_eager_agree(self, tmp_path):
        runner, campaign = run_small_campaign(tmp_path)
        eager = runner.result_set(campaign)
        lazy = runner.result_set(campaign, lazy=True)
        assert lazy.rows() == eager.rows()
        assert lazy.values("label") == eager.values("label")
        # Random access materializes the lazy set transparently.
        assert lazy[0].digest == eager[0].digest
        assert lazy._points is not None

    def test_iter_results_raises_on_missing_point(self, tmp_path):
        runner, campaign = run_small_campaign(tmp_path)
        bigger = Campaign.from_grid(
            "stream-bigger",
            campaign.scenario,
            {"sim.n_aus": [1, 2, 3]},
        )
        with pytest.raises(LookupError, match="missing"):
            list(runner.iter_results(bigger))

    def test_custom_reducer_still_gets_a_sequence(self, tmp_path):
        runner, campaign = run_small_campaign(tmp_path)
        lazy = runner.result_set(campaign, lazy=True)
        top = lazy.aggregate("assessment.access_failure_probability", reducer=max)
        assert top >= 0.0


class TestIncrementalDigest:
    @pytest.mark.parametrize(
        "rows",
        [
            [],
            [{"a": 1}],
            [{"b": 1.5, "a": [1, 2, {"c": None}]}, {"x": "ünïcode"}, {"y": True}],
        ],
    )
    def test_matches_the_batch_digest(self, rows):
        assert digest_rows_iter(iter(rows)) == digest_rows(rows)

    def test_consumes_a_generator_once(self):
        rows = [{"i": i} for i in range(5)]
        assert digest_rows_iter(row for row in rows) == digest_rows(rows)
