"""Unit tests for proofs of effort and effort accounting."""

import pytest

from repro.crypto.effort import (
    EffortAccount,
    EffortProof,
    EffortScheme,
    MemoryBoundFunction,
    verification_cost,
)


class TestEffortProof:
    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            EffortProof(claimed_cost=-1.0, valid=True, byproduct=b"", producer="p")

    def test_is_slotted(self):
        # Proofs are slotted (no __dict__) for construction speed — one proof
        # per protocol message; immutability is by convention, and slots
        # still reject stray attributes.
        proof = EffortProof(claimed_cost=1.0, valid=True, byproduct=b"x", producer="p")
        with pytest.raises(AttributeError):
            proof.injected_field = 1  # type: ignore[attr-defined]
        assert not hasattr(proof, "__dict__")


class TestEffortScheme:
    def test_generate_produces_valid_proof(self):
        scheme = EffortScheme()
        proof = scheme.generate("alice", 5.0)
        assert proof.valid
        assert proof.claimed_cost == 5.0
        assert proof.producer == "alice"
        assert len(proof.byproduct) == 20

    def test_byproducts_are_unique(self):
        scheme = EffortScheme()
        a = scheme.generate("alice", 1.0)
        b = scheme.generate("alice", 1.0)
        assert a.byproduct != b.byproduct

    def test_forge_produces_invalid_proof_at_no_cost(self):
        scheme = EffortScheme()
        proof = scheme.forge("mallory", claimed_cost=100.0)
        assert not proof.valid
        assert not scheme.verify(proof, 1.0)

    def test_verify_checks_validity_and_cost(self):
        scheme = EffortScheme()
        proof = scheme.generate("alice", 5.0)
        assert scheme.verify(proof, 5.0)
        assert scheme.verify(proof, 4.0)
        assert not scheme.verify(proof, 6.0)

    def test_verify_rejects_none(self):
        scheme = EffortScheme()
        assert not scheme.verify(None, 0.0)

    def test_verification_is_cheaper_than_generation(self):
        scheme = EffortScheme(verification_fraction=0.02)
        proof = scheme.generate("alice", 10.0)
        assert scheme.verification_cost(proof) == pytest.approx(0.2)
        assert scheme.verification_cost(proof) < proof.claimed_cost

    def test_rejects_bad_verification_fraction(self):
        with pytest.raises(ValueError):
            EffortScheme(verification_fraction=0.0)
        with pytest.raises(ValueError):
            EffortScheme(verification_fraction=1.0)

    def test_module_level_verification_cost(self):
        assert verification_cost(100.0, 0.05) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            verification_cost(-1.0)


class TestEffortAccount:
    def test_charges_accumulate_by_category(self):
        account = EffortAccount()
        account.charge("hash", 2.0)
        account.charge("hash", 3.0)
        account.charge("verify", 1.0)
        assert account.total == pytest.approx(6.0)
        assert account.category("hash") == pytest.approx(5.0)
        assert account.category("verify") == pytest.approx(1.0)
        assert account.category("missing") == 0.0

    def test_rejects_negative_charge(self):
        account = EffortAccount()
        with pytest.raises(ValueError):
            account.charge("hash", -1.0)

    def test_merge_combines_accounts(self):
        a = EffortAccount()
        b = EffortAccount()
        a.charge("hash", 1.0)
        b.charge("hash", 2.0)
        b.charge("repair", 4.0)
        a.merge(b)
        assert a.total == pytest.approx(7.0)
        assert a.category("hash") == pytest.approx(3.0)
        assert a.category("repair") == pytest.approx(4.0)


class TestMemoryBoundFunction:
    def test_prove_and_verify_roundtrip(self):
        mbf = MemoryBoundFunction(table_size=256, walk_length=16)
        proof = mbf.prove(b"challenge", iterations=8)
        assert mbf.verify(b"challenge", proof)

    def test_wrong_challenge_fails(self):
        mbf = MemoryBoundFunction(table_size=256, walk_length=16)
        proof = mbf.prove(b"challenge", iterations=8)
        assert not mbf.verify(b"other", proof)

    def test_tampered_endpoints_fail(self):
        mbf = MemoryBoundFunction(table_size=256, walk_length=16)
        proof = mbf.prove(b"challenge", iterations=8)
        proof["endpoints"][0] = (proof["endpoints"][0] + 1) % 256
        assert not mbf.verify(b"challenge", proof)

    def test_malformed_proof_fails(self):
        mbf = MemoryBoundFunction()
        assert not mbf.verify(b"c", {"endpoints": "nope", "iterations": 1, "binding": b""})
        assert not mbf.verify(b"c", {"endpoints": [], "iterations": 0, "binding": b""})

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MemoryBoundFunction(table_size=1)
        mbf = MemoryBoundFunction()
        with pytest.raises(ValueError):
            mbf.prove(b"c", iterations=0)

    def test_more_iterations_cost_more_work(self):
        # Structural check: the proof size scales with the requested effort.
        mbf = MemoryBoundFunction(table_size=128, walk_length=8)
        small = mbf.prove(b"c", iterations=4)
        large = mbf.prove(b"c", iterations=32)
        assert len(large["endpoints"]) > len(small["endpoints"])
