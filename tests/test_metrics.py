"""Unit tests for the metrics collectors and run comparisons."""

import pytest

from repro import units
from repro.metrics.access import AccessFailureSampler
from repro.metrics.polls import PollRecord, PollStatistics
from repro.metrics.report import (
    AttackAssessment,
    RunMetrics,
    average_metrics,
    compare_runs,
)
from repro.sim.engine import Simulator
from repro.storage.au import ArchivalUnit
from repro.storage.replica import ReplicaSet


def make_record(peer="p1", au="au-1", start=0.0, end=100.0, success=True, reason="success",
                alarm=False):
    return PollRecord(
        peer_id=peer,
        au_id=au,
        started_at=start,
        concluded_at=end,
        success=success,
        reason=reason,
        inner_votes=10,
        agreeing=9,
        disagreeing=1,
        repairs=0,
        alarm=alarm,
    )


class TestPollStatistics:
    def test_success_and_failure_counters(self):
        stats = PollStatistics()
        stats.record_poll(make_record(success=True))
        stats.record_poll(make_record(success=False, reason="inquorate"))
        stats.record_poll(make_record(success=False, reason="inquorate"))
        assert stats.successful_polls == 1
        assert stats.failed_polls == 2
        assert stats.total_polls == 3
        assert stats.failure_reasons == {"inquorate": 2}

    def test_alarm_counts_as_inconclusive(self):
        stats = PollStatistics()
        stats.record_poll(make_record(success=False, reason="inconclusive", alarm=True))
        assert stats.inconclusive_polls == 1
        assert stats.alarms == 1
        assert stats.failed_polls == 0

    def test_records_kept_only_when_requested(self):
        keep = PollStatistics(keep_records=True)
        drop = PollStatistics(keep_records=False)
        keep.record_poll(make_record())
        drop.record_poll(make_record())
        assert len(keep.records) == 1
        assert drop.records == []

    def test_successes_per_series(self):
        stats = PollStatistics()
        stats.record_poll(make_record(peer="p1", au="a", end=10.0))
        stats.record_poll(make_record(peer="p1", au="a", end=20.0))
        stats.record_poll(make_record(peer="p2", au="a", end=30.0))
        assert stats.successes_for("p1", "a") == [10.0, 20.0]
        assert stats.successes_for("p2", "a") == [30.0]
        assert stats.successes_for("p3", "a") == []
        assert stats.series_count() == 2

    def test_mean_time_between_successful_polls(self):
        stats = PollStatistics()
        # Series p1/a: 4 successes over a 100-unit window -> 25.
        for end in (10.0, 30.0, 60.0, 90.0):
            stats.record_poll(make_record(peer="p1", au="a", end=end))
        # Series p2/a: no successes -> contributes the whole window.
        stats.record_poll(make_record(peer="p2", au="a", success=False, reason="inquorate"))
        assert stats.mean_time_between_successful_polls(100.0) == pytest.approx((25 + 100) / 2)

    def test_mean_time_with_no_series_returns_window(self):
        stats = PollStatistics()
        assert stats.mean_time_between_successful_polls(50.0) == 50.0

    def test_mean_time_rejects_bad_window(self):
        stats = PollStatistics()
        with pytest.raises(ValueError):
            stats.mean_time_between_successful_polls(0.0)

    def test_auxiliary_counters(self):
        stats = PollStatistics()
        stats.record_invitation(True)
        stats.record_invitation(False)
        stats.record_invitation(None)
        stats.record_vote_supplied()
        stats.record_vote_received()
        stats.record_repair_supplied()
        stats.record_repair_applied()
        assert stats.invitations_sent == 3
        assert stats.invitations_accepted == 1
        assert stats.invitations_refused == 1
        assert stats.votes_supplied == 1
        assert stats.votes_received == 1
        assert stats.repairs_supplied == 1
        assert stats.repairs_applied == 1


class _FakePeer:
    def __init__(self, peer_id, n_aus):
        self.peer_id = peer_id
        self.replicas = ReplicaSet(peer_id)
        for index in range(n_aus):
            self.replicas.add(
                ArchivalUnit("au-%d" % index, size_bytes=2 * units.MB, block_size=units.MB)
            )


class TestAccessFailureSampler:
    def test_samples_fraction_of_damaged_replicas(self):
        simulator = Simulator()
        peers = [_FakePeer("p1", 2), _FakePeer("p2", 2)]
        sampler = AccessFailureSampler(simulator, peers, interval=10.0, end_time=100.0)
        assert sampler.current_fraction() == 0.0
        peers[0].replicas.get("au-0").damage_block(0)
        assert sampler.current_fraction() == pytest.approx(0.25)

    def test_periodic_sampling_and_mean(self):
        simulator = Simulator()
        peers = [_FakePeer("p1", 1)]
        sampler = AccessFailureSampler(simulator, peers, interval=10.0, end_time=100.0)
        sampler.start()
        simulator.schedule(45.0, lambda: peers[0].replicas.get("au-0").damage_block(0))
        simulator.run(until=100.0)
        assert len(sampler.samples) == 10
        # Damaged from t=45 onwards: samples at 50..100 (6 of 10) read 1.0.
        assert sampler.access_failure_probability == pytest.approx(0.6)
        assert sampler.max_fraction() == 1.0

    def test_no_peers_yields_zero(self):
        simulator = Simulator()
        sampler = AccessFailureSampler(simulator, [], interval=10.0, end_time=50.0)
        assert sampler.current_fraction() == 0.0
        assert sampler.access_failure_probability == 0.0

    def test_stop_halts_sampling(self):
        simulator = Simulator()
        peers = [_FakePeer("p1", 1)]
        sampler = AccessFailureSampler(simulator, peers, interval=10.0, end_time=1000.0)
        sampler.start()
        simulator.run(until=30.0)
        sampler.stop()
        simulator.run(until=100.0)
        assert len(sampler.samples) == 3

    def test_rejects_bad_interval(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            AccessFailureSampler(simulator, [], interval=0.0, end_time=10.0)


def make_metrics(access=1e-3, gap=90 * units.DAY, successes=100, loyal=1000.0, adversary=0.0):
    return RunMetrics(
        access_failure_probability=access,
        mean_time_between_successful_polls=gap,
        successful_polls=successes,
        failed_polls=5,
        inconclusive_polls=0,
        loyal_effort=loyal,
        adversary_effort=adversary,
        observation_window=units.YEAR,
    )


class TestRunMetricsAndComparison:
    def test_effort_per_successful_poll(self):
        metrics = make_metrics(loyal=1000.0, successes=100)
        assert metrics.effort_per_successful_poll == pytest.approx(10.0)

    def test_effort_per_poll_with_zero_successes(self):
        metrics = make_metrics(successes=0, loyal=500.0)
        assert metrics.effort_per_successful_poll == 500.0

    def test_compare_runs_ratios(self):
        baseline = make_metrics(gap=90 * units.DAY, loyal=1000.0, successes=100)
        attacked = make_metrics(
            access=2e-3, gap=180 * units.DAY, loyal=3000.0, successes=100, adversary=1500.0
        )
        assessment = compare_runs(attacked, baseline)
        assert assessment.delay_ratio == pytest.approx(2.0)
        assert assessment.coefficient_of_friction == pytest.approx(3.0)
        assert assessment.cost_ratio == pytest.approx(0.5)
        assert assessment.access_failure_probability == pytest.approx(2e-3)

    def test_effortless_attack_has_no_cost_ratio(self):
        baseline = make_metrics()
        attacked = make_metrics(adversary=0.0)
        assessment = compare_runs(attacked, baseline)
        assert assessment.cost_ratio is None

    def test_average_metrics(self):
        a = make_metrics(access=1e-3, successes=100, loyal=1000.0)
        b = make_metrics(access=3e-3, successes=200, loyal=3000.0)
        averaged = average_metrics([a, b])
        assert averaged.access_failure_probability == pytest.approx(2e-3)
        assert averaged.successful_polls == 150
        assert averaged.loyal_effort == pytest.approx(2000.0)

    def test_average_metrics_rejects_empty(self):
        with pytest.raises(ValueError):
            average_metrics([])

    def test_average_metrics_merges_extras(self):
        a = make_metrics()
        a.extras["alarms"] = 2.0
        b = make_metrics()
        b.extras["alarms"] = 4.0
        assert average_metrics([a, b]).extras["alarms"] == pytest.approx(3.0)


class TestCompareRunsEdgeCases:
    def test_zero_baseline_gap_is_clamped(self):
        # A degenerate baseline with a zero mean gap must not divide by zero;
        # the clamp floors the denominator at 1e-9.
        baseline = make_metrics(gap=0.0)
        attacked = make_metrics(gap=90 * units.DAY)
        assessment = compare_runs(attacked, baseline)
        assert assessment.delay_ratio == pytest.approx(90 * units.DAY / 1e-9)

    def test_zero_baseline_effort_is_clamped(self):
        baseline = make_metrics(loyal=0.0, successes=100)
        attacked = make_metrics(loyal=3000.0, successes=100)
        assessment = compare_runs(attacked, baseline)
        assert assessment.coefficient_of_friction == pytest.approx(30.0 / 1e-9)

    def test_both_gaps_zero_yield_zero_delay_ratio(self):
        baseline = make_metrics(gap=0.0)
        attacked = make_metrics(gap=0.0)
        assert compare_runs(attacked, baseline).delay_ratio == 0.0

    def test_cost_ratio_none_only_when_adversary_effort_is_zero(self):
        baseline = make_metrics()
        assert compare_runs(make_metrics(adversary=0.0), baseline).cost_ratio is None
        tiny = compare_runs(make_metrics(adversary=1e-12), baseline)
        assert tiny.cost_ratio is not None and tiny.cost_ratio > 0

    def test_cost_ratio_with_zero_loyal_effort_is_clamped(self):
        baseline = make_metrics()
        attacked = make_metrics(loyal=0.0, adversary=100.0)
        assessment = compare_runs(attacked, baseline)
        assert assessment.cost_ratio == pytest.approx(100.0 / 1e-9)

    def test_identical_runs_have_unit_ratios(self):
        run = make_metrics()
        assessment = compare_runs(run, run)
        assert assessment.delay_ratio == pytest.approx(1.0)
        assert assessment.coefficient_of_friction == pytest.approx(1.0)


class TestMetricsSerialization:
    def test_run_metrics_round_trip(self):
        run = make_metrics(adversary=42.0)
        run.extras["alarms"] = 2.0
        assert RunMetrics.from_dict(run.to_dict()) == run

    def test_assessment_round_trip(self):
        attacked = make_metrics(access=2e-3, adversary=10.0)
        baseline = make_metrics()
        assessment = compare_runs(attacked, baseline)
        restored = AttackAssessment.from_dict(assessment.to_dict())
        assert restored == assessment

    def test_assessment_round_trip_preserves_none_cost_ratio(self):
        assessment = compare_runs(make_metrics(adversary=0.0), make_metrics())
        restored = AttackAssessment.from_dict(assessment.to_dict())
        assert restored.cost_ratio is None
