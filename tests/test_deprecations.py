"""The legacy runner entry points emit real, caller-attributed warnings."""

import warnings

import pytest

from repro import units
from repro.config import smoke_config
from repro.experiments.pipe_stoppage import make_pipe_stoppage_factory
from repro.experiments.runner import run_attack_experiment, run_many, run_single


@pytest.fixture
def smoke():
    protocol, sim = smoke_config()
    return protocol, sim.with_overrides(duration=units.months(4))


def test_run_single_warns_once_per_call_site(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):
            run_single(protocol, sim)  # one call site, exercised twice
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    # The default filter shows a warning once per (message, category,
    # location); stacklevel=2 attributes it to *this* file, so the second
    # call from the same line is deduplicated.
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "run_single is deprecated" in str(deprecations[0].message)


def test_run_many_warns_once_per_call_site(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):
            run_many(protocol, sim, seeds=(1,))
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "run_many is deprecated" in str(deprecations[0].message)


def test_run_attack_experiment_warns_once_per_call_site(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings():
        # The factory helper has its own deprecation (tested below); keep
        # this test's warning ledger about run_attack_experiment only.
        warnings.simplefilter("ignore", DeprecationWarning)
        factory = make_pipe_stoppage_factory(
            attack_duration=units.days(60), coverage=1.0, recuperation=units.days(15)
        )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):
            run_attack_experiment("pipe", protocol, sim, factory, seeds=(1,))
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "run_attack_experiment is deprecated" in str(deprecations[0].message)


def test_make_factory_helpers_warn_once_per_call_site():
    """The seconds-based ``make_*_factory`` kwargs are deprecation shims."""
    from repro.experiments.admission_attack import make_admission_flood_factory
    from repro.experiments.effortful import make_brute_force_factory
    from repro.adversary.brute_force import DefectionPoint

    helpers = [
        (
            "make_pipe_stoppage_factory",
            lambda: make_pipe_stoppage_factory(
                attack_duration=units.days(30), coverage=1.0
            ),
        ),
        (
            "make_admission_flood_factory",
            lambda: make_admission_flood_factory(
                attack_duration=units.days(30), coverage=1.0
            ),
        ),
        (
            "make_brute_force_factory",
            lambda: make_brute_force_factory(DefectionPoint.NONE),
        ),
    ]
    for name, call in helpers:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(2):
                call()  # one call site, exercised twice
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1, name
        # stacklevel=2 attributes the warning to the caller of the shim.
        assert deprecations[0].filename == __file__, name
        assert name in str(deprecations[0].message)


def test_make_factory_still_builds_a_working_factory(smoke):
    """The shim still returns the registry-backed factory it always did."""
    protocol, sim = smoke
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        factory = make_pipe_stoppage_factory(
            attack_duration=units.days(30), coverage=0.5
        )
    assert factory.adversary_kind == "pipe_stoppage"
    assert factory.adversary_params["attack_duration_days"] == 30.0
    assert factory.adversary_params["coverage"] == 0.5


def test_distinct_call_sites_each_warn(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        run_single(protocol, sim)
        run_single(protocol, sim)  # a second, distinct call site
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 2
    assert {w.filename for w in deprecations} == {__file__}
    assert deprecations[0].lineno != deprecations[1].lineno
