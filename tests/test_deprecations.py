"""The legacy runner entry points emit real, caller-attributed warnings."""

import warnings

import pytest

from repro import units
from repro.config import smoke_config
from repro.experiments.pipe_stoppage import make_pipe_stoppage_factory
from repro.experiments.runner import run_attack_experiment, run_many, run_single


@pytest.fixture
def smoke():
    protocol, sim = smoke_config()
    return protocol, sim.with_overrides(duration=units.months(4))


def test_run_single_warns_once_per_call_site(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):
            run_single(protocol, sim)  # one call site, exercised twice
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    # The default filter shows a warning once per (message, category,
    # location); stacklevel=2 attributes it to *this* file, so the second
    # call from the same line is deduplicated.
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "run_single is deprecated" in str(deprecations[0].message)


def test_run_many_warns_once_per_call_site(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):
            run_many(protocol, sim, seeds=(1,))
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "run_many is deprecated" in str(deprecations[0].message)


def test_run_attack_experiment_warns_once_per_call_site(smoke):
    protocol, sim = smoke
    factory = make_pipe_stoppage_factory(
        attack_duration=units.days(60), coverage=1.0, recuperation=units.days(15)
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):
            run_attack_experiment("pipe", protocol, sim, factory, seeds=(1,))
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
    assert "run_attack_experiment is deprecated" in str(deprecations[0].message)


def test_distinct_call_sites_each_warn(smoke):
    protocol, sim = smoke
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        run_single(protocol, sim)
        run_single(protocol, sim)  # a second, distinct call site
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 2
    assert {w.filename for w in deprecations} == {__file__}
    assert deprecations[0].lineno != deprecations[1].lineno
