"""Session fault handling: per-run timeouts, bounded retries, and the
PointExecutionError surface the campaign runner builds on."""

import pytest

from repro import units
from repro.api import AdversarySpec, PointExecutionError, Scenario, Session
from repro.api import session as session_module


def smoke_scenario(**overrides):
    fields = dict(
        name="retry test",
        base="smoke",
        sim={"duration": units.months(3)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 30.0, "coverage": 1.0, "recuperation_days": 10.0},
        ),
        seeds=(1,),
    )
    fields.update(overrides)
    return Scenario(**fields)


class FlakyExecutor:
    """Stand-in for execute_point that fails the first ``failures`` calls."""

    def __init__(self, failures, exception=RuntimeError("transient")):
        self.failures = failures
        self.exception = exception
        self.calls = 0
        self.real = session_module.execute_point

    def __call__(self, scenario, seed, baseline=False, registry=None, trace_path=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exception
        return self.real(
            scenario, seed, baseline=baseline, registry=registry, trace_path=trace_path
        )


class TestSerialRetries:
    def test_transient_failure_is_retried_to_success(self, monkeypatch):
        flaky = FlakyExecutor(failures=1)
        monkeypatch.setattr(session_module, "execute_point", flaky)
        session = Session(retries=1, retry_backoff=0.0)
        runs = session.run_metrics(smoke_scenario(adversary=None))
        assert len(runs) == 1
        assert flaky.calls == 2

    def test_exhausted_retries_raise_point_execution_error(self, monkeypatch):
        flaky = FlakyExecutor(failures=10)
        monkeypatch.setattr(session_module, "execute_point", flaky)
        session = Session(retries=2, retry_backoff=0.0)
        with pytest.raises(PointExecutionError) as excinfo:
            session.run_metrics(smoke_scenario(adversary=None))
        assert excinfo.value.attempts == 3
        assert flaky.calls == 3
        assert "retry test" in str(excinfo.value)
        assert "seed 1" in str(excinfo.value)

    def test_zero_retries_fail_on_first_error(self, monkeypatch):
        flaky = FlakyExecutor(failures=10)
        monkeypatch.setattr(session_module, "execute_point", flaky)
        session = Session(retries=0, retry_backoff=0.0)
        with pytest.raises(PointExecutionError):
            session.run_metrics(smoke_scenario(adversary=None))
        assert flaky.calls == 1

    def test_keyboard_interrupt_is_never_swallowed(self, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt()

        monkeypatch.setattr(session_module, "execute_point", interrupted)
        session = Session(retries=5, retry_backoff=0.0)
        with pytest.raises(KeyboardInterrupt):
            session.run_metrics(smoke_scenario(adversary=None))


class TestRunAllOnError:
    def test_return_mode_substitutes_errors_per_scenario(self, monkeypatch):
        real = session_module.execute_point

        def selective(scenario, seed, baseline=False, registry=None, trace_path=None):
            if scenario.name == "bad":
                raise RuntimeError("doomed")
            return real(
                scenario,
                seed,
                baseline=baseline,
                registry=registry,
                trace_path=trace_path,
            )

        monkeypatch.setattr(session_module, "execute_point", selective)
        session = Session(retries=0, retry_backoff=0.0)
        good = smoke_scenario(adversary=None, name="good")
        # A distinct config digest, or the two scenarios would share one run.
        bad = smoke_scenario(
            adversary=None, name="bad", sim={"duration": units.months(4)}
        )
        results = session.run_all([good, bad], on_error="return")
        assert not isinstance(results[0], PointExecutionError)
        assert isinstance(results[1], PointExecutionError)
        assert "doomed" in str(results[1])

    def test_raise_mode_aborts_the_batch(self, monkeypatch):
        def doomed(*args, **kwargs):
            raise RuntimeError("doomed")

        monkeypatch.setattr(session_module, "execute_point", doomed)
        session = Session(retries=0, retry_backoff=0.0)
        with pytest.raises(PointExecutionError):
            session.run_all([smoke_scenario(adversary=None)])

    def test_invalid_on_error_is_rejected(self):
        with pytest.raises(ValueError):
            Session().run_all([], on_error="ignore")


class TestPoolTimeout:
    def test_timed_out_runs_fail_and_the_pool_recovers(self):
        scenario = smoke_scenario(adversary=None, seeds=(1, 2))
        session = Session(workers=2, timeout=0.01, retries=0, retry_backoff=0.0)
        with session:
            with pytest.raises(PointExecutionError) as excinfo:
                session.run_metrics(scenario)
            assert isinstance(excinfo.value.cause, TimeoutError)
            # The timed-out pool was abandoned; a follow-up session run with
            # a sane budget must succeed on a fresh pool.
            session.timeout = None
            runs = session.run_metrics(scenario)
            assert len(runs) == 2
