"""Unit tests for the admission-control filter."""

import random

import pytest

from repro import units
from repro.config import ProtocolConfig
from repro.core.admission import AdmissionControl, AdmissionDecision
from repro.core.reputation import Grade, IntroductionTable, KnownPeers


def make_admission(
    config=None, rng_seed=1, enabled=True
) -> AdmissionControl:
    config = config if config is not None else ProtocolConfig()
    known = KnownPeers(decay_interval=config.grade_decay_interval)
    intros = IntroductionTable(cap=config.max_outstanding_introductions)
    return AdmissionControl(
        config=config,
        known_peers=known,
        introductions=intros,
        rng=random.Random(rng_seed),
        enabled=enabled,
    )


class TestKnownPeerAdmission:
    def test_even_peer_is_admitted(self):
        admission = make_admission()
        admission.known_peers.set_grade("friend", Grade.EVEN, now=0.0)
        result = admission.consider("friend", now=1.0)
        assert result.decision is AdmissionDecision.ADMITTED
        assert result.cost == admission.config.session_setup_cost
        assert not result.refractory_triggered

    def test_credit_peer_is_admitted(self):
        admission = make_admission()
        admission.known_peers.set_grade("generous", Grade.CREDIT, now=0.0)
        assert admission.consider("generous", now=1.0).decision.admitted

    def test_known_peer_rate_limited_within_refractory_window(self):
        admission = make_admission()
        admission.known_peers.set_grade("friend", Grade.EVEN, now=0.0)
        assert admission.consider("friend", now=0.0).decision.admitted
        second = admission.consider("friend", now=units.HOUR)
        assert second.decision is AdmissionDecision.DROPPED_RATE_LIMITED
        assert second.cost == admission.config.drop_cost

    def test_known_peer_admitted_again_after_window(self):
        admission = make_admission()
        admission.known_peers.set_grade("friend", Grade.EVEN, now=0.0)
        admission.consider("friend", now=0.0)
        later = admission.consider("friend", now=2 * units.DAY)
        assert later.decision.admitted

    def test_known_peer_admission_does_not_trigger_refractory(self):
        admission = make_admission()
        admission.known_peers.set_grade("friend", Grade.EVEN, now=0.0)
        admission.consider("friend", now=0.0)
        assert not admission.refractory.in_refractory(units.HOUR)


class TestUnknownAndDebtAdmission:
    def test_unknown_peer_dropped_with_high_probability(self):
        admission = make_admission()
        decisions = []
        for attempt in range(300):
            # Space the attempts beyond the refractory period so drops are
            # governed purely by the random-drop probability.
            now = attempt * 2 * units.DAY
            decisions.append(admission.consider("stranger-%d" % attempt, now).decision)
        admitted = sum(1 for d in decisions if d.admitted)
        # Expect roughly 10% admission (0.90 drop probability).
        assert 0.03 < admitted / len(decisions) < 0.22

    def test_debt_peer_dropped_with_lower_probability_than_unknown(self):
        config = ProtocolConfig()
        unknown_admitted = 0
        debt_admitted = 0
        trials = 400
        admission_u = make_admission(config, rng_seed=11)
        admission_d = make_admission(config, rng_seed=11)
        for attempt in range(trials):
            now = attempt * 2 * units.DAY
            if admission_u.consider("u-%d" % attempt, now).decision.admitted:
                unknown_admitted += 1
            admission_d.known_peers.set_grade("d-%d" % attempt, Grade.DEBT, now=now)
            if admission_d.consider("d-%d" % attempt, now).decision.admitted:
                debt_admitted += 1
        assert debt_admitted > unknown_admitted

    def test_admission_triggers_refractory_period(self):
        admission = make_admission(rng_seed=3)
        now = 0.0
        while True:
            result = admission.consider("stranger", now)
            if result.decision.admitted:
                assert result.refractory_triggered
                break
            now += 2 * units.DAY
        # Any unknown/in-debt invitation inside the refractory period is dropped.
        follow_up = admission.consider("other-stranger", now + units.HOUR)
        assert follow_up.decision is AdmissionDecision.DROPPED_REFRACTORY

    def test_even_peers_bypass_refractory(self):
        admission = make_admission(rng_seed=3)
        admission.known_peers.set_grade("friend", Grade.EVEN, now=0.0)
        admission.refractory.trigger(now=0.0)
        assert admission.consider("friend", now=units.HOUR).decision.admitted


class TestIntroductions:
    def test_introduced_peer_bypasses_drops_and_refractory(self):
        admission = make_admission()
        admission.refractory.trigger(now=0.0)
        admission.introductions.add("newcomer", "sponsor")
        result = admission.consider("newcomer", now=units.HOUR)
        assert result.decision is AdmissionDecision.ADMITTED_INTRODUCED
        assert result.introduction_consumed

    def test_introduction_is_consumed_on_use(self):
        admission = make_admission()
        admission.introductions.add("newcomer", "sponsor")
        admission.consider("newcomer", now=0.0)
        assert not admission.introductions.has_introduction("newcomer")

    def test_introduced_peer_becomes_known_even(self):
        admission = make_admission()
        admission.introductions.add("newcomer", "sponsor")
        admission.consider("newcomer", now=0.0)
        assert admission.known_peers.grade_of("newcomer", now=0.0) is Grade.EVEN


class TestStatsAndAblation:
    def test_stats_counters(self):
        admission = make_admission(rng_seed=5)
        admission.known_peers.set_grade("friend", Grade.EVEN, now=0.0)
        admission.consider("friend", now=0.0)
        admission.consider("friend", now=units.HOUR)
        for attempt in range(20):
            admission.consider("stranger-%d" % attempt, now=units.HOUR)
        stats = admission.stats
        assert stats.considered == 22
        assert stats.admitted >= 1
        assert stats.dropped_rate_limited == 1
        assert (
            stats.admitted
            + stats.admitted_introduced
            + stats.dropped_refractory
            + stats.dropped_random
            + stats.dropped_rate_limited
            == stats.considered
        )

    def test_disabled_admission_admits_everything(self):
        admission = make_admission(enabled=False)
        for attempt in range(50):
            result = admission.consider("stranger-%d" % attempt, now=0.0)
            assert result.decision.admitted

    def test_decision_admitted_property(self):
        assert AdmissionDecision.ADMITTED.admitted
        assert AdmissionDecision.ADMITTED_INTRODUCED.admitted
        assert not AdmissionDecision.DROPPED_RANDOM.admitted
        assert not AdmissionDecision.DROPPED_REFRACTORY.admitted
        assert not AdmissionDecision.DROPPED_RATE_LIMITED.admitted
