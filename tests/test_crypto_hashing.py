"""Unit tests for content hashing and the hash cost model."""

import random

import pytest

from repro import units
from repro.crypto.hashing import ContentHasher, HashCostModel, make_nonce, vote_size_bytes
from repro.storage.au import ArchivalUnit, synthetic_content


class TestHashCostModel:
    def test_hash_time_is_linear_in_size(self):
        model = HashCostModel(hash_rate=40 * units.MB)
        assert model.hash_time(40 * units.MB) == pytest.approx(1.0)
        assert model.hash_time(80 * units.MB) == pytest.approx(2.0)

    def test_read_time_uses_disk_rate(self):
        model = HashCostModel(disk_rate=60 * units.MB)
        assert model.read_time(60 * units.MB) == pytest.approx(1.0)

    def test_rejects_negative_sizes(self):
        model = HashCostModel()
        with pytest.raises(ValueError):
            model.hash_time(-1)
        with pytest.raises(ValueError):
            model.read_time(-1)

    def test_paper_au_hash_time_is_reasonable(self):
        # A 0.5 GB AU at 40 MB/s takes about 13 seconds on the reference PC.
        model = HashCostModel(hash_rate=40 * units.MB)
        assert 10.0 < model.hash_time(units.GB // 2) < 20.0


class TestMakeNonce:
    def test_nonce_length(self):
        nonce = make_nonce(random.Random(1))
        assert len(nonce) == 20

    def test_nonces_differ(self):
        rng = random.Random(1)
        assert make_nonce(rng) != make_nonce(rng)

    def test_nonce_is_deterministic_per_seed(self):
        assert make_nonce(random.Random(5)) == make_nonce(random.Random(5))


class TestContentHasher:
    def setup_method(self):
        self.hasher = ContentHasher()
        self.au = ArchivalUnit("au-x", size_bytes=4 * units.KB, block_size=units.KB)
        self.blocks = synthetic_content(self.au)

    def test_running_hashes_one_per_block(self):
        hashes = self.hasher.running_hashes(b"nonce", self.blocks)
        assert len(hashes) == self.au.n_blocks

    def test_identical_content_yields_identical_hashes(self):
        a = self.hasher.running_hashes(b"nonce", self.blocks)
        b = self.hasher.running_hashes(b"nonce", list(self.blocks))
        assert a == b

    def test_different_nonce_changes_every_hash(self):
        a = self.hasher.running_hashes(b"nonce-1", self.blocks)
        b = self.hasher.running_hashes(b"nonce-2", self.blocks)
        assert all(x != y for x, y in zip(a, b))

    def test_damage_in_block_k_changes_hashes_from_k_onwards(self):
        damaged = list(self.blocks)
        damaged[2] = b"\x00" * len(damaged[2])
        good = self.hasher.running_hashes(b"n", self.blocks)
        bad = self.hasher.running_hashes(b"n", damaged)
        assert good[0] == bad[0]
        assert good[1] == bad[1]
        assert good[2] != bad[2]
        assert good[3] != bad[3]

    def test_block_proof_binds_nonce_index_and_content(self):
        proof = self.hasher.block_proof(b"n", 1, self.blocks[1])
        assert proof != self.hasher.block_proof(b"m", 1, self.blocks[1])
        assert proof != self.hasher.block_proof(b"n", 2, self.blocks[1])
        assert proof != self.hasher.block_proof(b"n", 1, self.blocks[2])

    def test_digest_is_stable(self):
        assert self.hasher.digest(b"abc") == self.hasher.digest(b"abc")


class TestVoteSize:
    def test_vote_size_grows_with_blocks(self):
        assert vote_size_bytes(100) > vote_size_bytes(10)

    def test_vote_size_counts_twenty_bytes_per_block(self):
        assert vote_size_bytes(10, digest_size=20, overhead=0) == 200

    def test_rejects_negative_blocks(self):
        with pytest.raises(ValueError):
            vote_size_bytes(-1)
