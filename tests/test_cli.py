"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import clear_baseline_cache


@pytest.fixture(autouse=True)
def _clear_cache():
    clear_baseline_cache()
    yield
    clear_baseline_cache()


FAST_SCALE = ["--peers", "8", "--aus", "1", "--years", "0.6", "--seed", "5", "--seeds", "5"]


class TestParser:
    def test_requires_a_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_baseline_defaults(self):
        args = build_parser().parse_args(["baseline"])
        assert args.command == "baseline"
        assert args.intervals == [2.0, 3.0, 6.0, 12.0]
        assert args.mtbf == [5.0]
        assert args.seeds == [1]

    def test_scale_arguments_are_parsed(self):
        args = build_parser().parse_args(["pipe-stoppage", *FAST_SCALE])
        assert args.peers == 8
        assert args.aus == 1
        assert args.years == 0.6
        assert args.seeds == [5]

    def test_comma_separated_lists(self):
        args = build_parser().parse_args(
            ["pipe-stoppage", "--durations", "5,30", "--coverages", "0.4,1.0"]
        )
        assert args.durations == [5.0, 30.0]
        assert args.coverages == [0.4, 1.0]

    def test_table1_defection_choices(self):
        args = build_parser().parse_args(["table1", "--defections", "intro", "none"])
        assert args.defections == ["intro", "none"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--defections", "bogus"])

    def test_ablation_requires_a_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation"])
        args = build_parser().parse_args(["ablation", "effort"])
        assert args.which == "effort"


class TestExecution:
    def test_baseline_command_prints_the_figure2_table(self, capsys):
        exit_code = main(
            ["baseline", *FAST_SCALE, "--intervals", "3", "--mtbf", "5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 2" in output
        assert "poll_interval_months" in output
        assert "3.000" in output

    def test_pipe_stoppage_command_prints_the_metrics(self, capsys):
        exit_code = main(
            ["pipe-stoppage", *FAST_SCALE, "--durations", "60", "--coverages", "1.0"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "delay_ratio" in output
        assert "coefficient_of_friction" in output

    def test_table1_command_single_defection(self, capsys):
        exit_code = main(["table1", *FAST_SCALE, "--defections", "intro"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in output
        assert "intro" in output
        assert "cost_ratio" in output

    def test_ablation_desync_command(self, capsys):
        exit_code = main(["ablation", "desync", *FAST_SCALE])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "desynchronized" in output
        assert "refusal_rate" in output


class TestScenarioCommands:
    def test_list_adversaries_shows_builtins(self, capsys):
        exit_code = main(["list-adversaries"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for kind in ("pipe_stoppage", "admission_flood", "brute_force", "composed"):
            assert kind in output
        assert "Targeting components" not in output

    def test_list_adversaries_components_shows_the_catalogs(self, capsys):
        exit_code = main(["list-adversaries", "--components"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for heading in (
            "Targeting components",
            "Schedule components",
            "Vector components",
            "Adaptive components",
        ):
            assert heading in output
        for kind in (
            "random_subset",
            "sticky",
            "round_robin",
            "weighted_damage",
            "on_off",
            "ramp",
            "piecewise",
            "brute_force_poll",
            "effort_attrition",
            "threshold_switch",
        ):
            assert kind in output

    def test_campaign_run_structured_spec_matrix(self, tmp_path, capsys):
        exit_code = main(
            [
                "campaign",
                "run",
                "examples/campaigns/adversary_matrix.json",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "4 points complete" in output
        assert "targeting.kind" in output
        assert "vectors.0.kind" in output

    def test_run_point_scenario_from_file(self, tmp_path, capsys):
        from repro import units
        from repro.api import AdversarySpec, Scenario

        scenario = Scenario(
            name="cli point",
            base="smoke",
            sim={"duration": units.months(5)},
            adversary=AdversarySpec(
                "pipe_stoppage", {"attack_duration_days": 45.0, "coverage": 1.0}
            ),
            seeds=(1,),
        )
        path = scenario.save(tmp_path / "scenario.json")
        exit_code = main(["run", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "cli point" in output
        assert "delay_ratio" in output
        assert scenario.digest[:12] in output

    def test_run_sweep_scenario_with_store(self, tmp_path, capsys):
        from repro import units
        from repro.api import AdversarySpec, Scenario

        scenario = Scenario(
            name="cli sweep",
            base="smoke",
            sim={"duration": units.months(5)},
            adversary=AdversarySpec("pipe_stoppage", {"coverage": 1.0}),
            seeds=(1,),
            sweep={"adversary.attack_duration_days": [30.0, 60.0]},
        )
        path = scenario.save(tmp_path / "sweep.json")
        store_dir = tmp_path / "store"
        exit_code = main(["run", str(path), "--store", str(store_dir)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "attack_duration_days" in output
        assert store_dir.is_dir() and list(store_dir.glob("result-*.json"))

    def test_run_seeds_override(self, tmp_path, capsys):
        from repro import units
        from repro.api import Scenario

        scenario = Scenario(
            name="cli seeds",
            base="smoke",
            sim={"duration": units.months(5)},
            seeds=(1, 2, 3),
        )
        path = scenario.save(tmp_path / "scenario.json")
        exit_code = main(["run", str(path), "--seeds", "5"])
        assert exit_code == 0
        assert "cli seeds" in capsys.readouterr().out

    def test_attack_commands_are_generated_from_registry(self):
        parser = build_parser()
        args = parser.parse_args(
            ["pipe-stoppage", "--durations", "5,30", "--coverages", "0.4"]
        )
        assert args.durations == [5.0, 30.0]
        assert args.coverages == [0.4]
        args = parser.parse_args(["admission-flood", "--rate", "12"])
        assert args.rate == 12.0

    def test_workers_and_store_flags_parse(self):
        args = build_parser().parse_args(
            ["baseline", "--workers", "4", "--store", "/tmp/x"]
        )
        assert args.workers == 4
        assert args.store == "/tmp/x"
