"""CLI coverage for the service-era subcommands: SQLite ``--store``
references, ``campaign status --json``, ``store stats/clear/migrate``,
``worker --store``, and the streaming report path."""

import json

import pytest

from repro import units
from repro.api import Campaign, ResultStore, Scenario
from repro.cli import build_parser, main
from repro.service.sqlite_store import SQLiteResultStore


def campaign_file(tmp_path, points=2):
    scenario = Scenario(
        name="cli service",
        base="smoke",
        sim={"duration": units.months(2)},
        seeds=(1,),
    )
    campaign = Campaign.from_grid(
        "cli-service", scenario, {"sim.n_aus": list(range(1, points + 1))}
    )
    return campaign, campaign.save(tmp_path / "campaign.json")


class TestParser:
    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_worker_options_parse(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "http://localhost:8642", "--max-points", "3"]
        )
        assert args.connect == "http://localhost:8642"
        assert args.max_points == 3

    def test_submit_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "submit", "fig2_baseline"])

    def test_worker_needs_exactly_one_transport(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])
        with pytest.raises(SystemExit):
            main(["worker", "--connect", "http://x", "--store", "y.db"])


class TestSQLiteStoreFlag:
    def test_campaign_run_into_sqlite_store(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        db = str(tmp_path / "results.db")
        assert main(["campaign", "run", str(path), "--store", db]) == 0
        assert "2 points complete" in capsys.readouterr().out
        store = SQLiteResultStore(db)
        assert store.stats()["result"]["count"] == 2

    def test_report_streams_from_sqlite(self, tmp_path, capsys):
        campaign, path = campaign_file(tmp_path)
        db = str(tmp_path / "results.db")
        main(["campaign", "run", str(path), "--store", db])
        capsys.readouterr()
        assert main(["campaign", "report", str(path), "--store", db]) == 0
        assert "result digest:" in capsys.readouterr().out


class TestStatusJson:
    def test_status_json_payload(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        db = str(tmp_path / "results.db")
        main(["campaign", "run", str(path), "--store", db, "--max-points", "1"])
        capsys.readouterr()
        assert main(["campaign", "status", str(path), "--store", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 2
        assert payload["counts"] == {"complete": 1, "failed": 0, "pending": 1}
        assert payload["complete"] is False
        assert [p["state"] for p in payload["points"]] == ["complete", "pending"]


class TestStoreSubcommands:
    def test_stats_both_backends(self, tmp_path, capsys):
        directory = tmp_path / "dir-store"
        ResultStore(directory).save_json("runs", "d1", [1])
        assert main(["store", "stats", "--store", str(directory)]) == 0
        assert "directory backend" in capsys.readouterr().out

        db = tmp_path / "s.db"
        SQLiteResultStore(db).save_json("runs", "d1", [1])
        assert main(["store", "stats", "--store", str(db), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"]["count"] == 1

    def test_clear_requires_confirmation(self, tmp_path, capsys):
        db = tmp_path / "s.db"
        SQLiteResultStore(db).save_json("runs", "d1", [1])
        assert main(["store", "clear", "--store", str(db)]) == 2
        assert "--yes" in capsys.readouterr().out
        assert main(["store", "clear", "--store", str(db), "--yes"]) == 0
        assert SQLiteResultStore(db).stats() == {}

    def test_prune_works_on_sqlite(self, tmp_path, capsys):
        db = tmp_path / "s.db"
        store = SQLiteResultStore(db)
        store.save_json("runs", "d1", [1])
        store.save_json("result", "d2", {})
        assert main(["store", "prune", "--store", str(db), "--kind", "runs"]) == 0
        capsys.readouterr()
        fresh = SQLiteResultStore(db)
        assert not fresh.has("runs", "d1")
        assert fresh.has("result", "d2")

    def test_migrate_directory_to_sqlite(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        directory = str(tmp_path / "dir-store")
        main(["campaign", "run", str(path), "--store", directory])
        capsys.readouterr()
        db = str(tmp_path / "migrated.db")
        assert main(["store", "migrate", directory, db]) == 0
        assert "migrated" in capsys.readouterr().out
        # The migrated store serves the same report.
        assert main(["campaign", "report", str(path), "--store", db]) == 0
        assert "result digest:" in capsys.readouterr().out


class TestWorkerCommand:
    def test_local_worker_drains_a_submitted_campaign(self, tmp_path, capsys):
        campaign, path = campaign_file(tmp_path)
        db = str(tmp_path / "svc.db")

        from repro.service import Broker

        Broker(SQLiteResultStore(db)).submit(campaign)
        assert main(["worker", "--store", db, "--id", "cli-worker"]) == 0
        output = capsys.readouterr().out
        assert "2 completed" in output

        assert main(["campaign", "status", str(path), "--store", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
