"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import units
from repro.config import ProtocolConfig, SimulationConfig, smoke_config
from repro.core.peer import Peer
from repro.crypto.effort import EffortScheme
from repro.crypto.hashing import HashCostModel
from repro.metrics.polls import PollStatistics
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.randomness import RandomStreams
from repro.storage.au import ArchivalUnit


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(12345)


@pytest.fixture
def network(simulator, streams) -> Network:
    return Network(simulator, streams)


@pytest.fixture
def protocol_config() -> ProtocolConfig:
    protocol, _ = smoke_config()
    return protocol


@pytest.fixture
def sim_config() -> SimulationConfig:
    _, sim = smoke_config()
    return sim


@pytest.fixture
def small_au() -> ArchivalUnit:
    return ArchivalUnit(au_id="au-test", size_bytes=8 * units.MB, block_size=units.MB)


@pytest.fixture
def cost_model() -> HashCostModel:
    return HashCostModel(hash_rate=40 * units.MB, disk_rate=60 * units.MB)


@pytest.fixture
def effort_scheme(protocol_config) -> EffortScheme:
    return EffortScheme(verification_fraction=protocol_config.effort_verification_fraction)


@pytest.fixture
def collector() -> PollStatistics:
    return PollStatistics(keep_records=True)


def make_peer(
    peer_id: str,
    simulator: Simulator,
    network: Network,
    protocol_config: ProtocolConfig,
    cost_model: HashCostModel,
    effort_scheme: EffortScheme,
    collector: PollStatistics,
    seed: int = 0,
) -> Peer:
    """Create and register one peer (helper shared by several test modules)."""
    peer = Peer(
        peer_id=peer_id,
        simulator=simulator,
        network=network,
        config=protocol_config,
        cost_model=cost_model,
        effort_scheme=effort_scheme,
        rng=random.Random(seed),
        collector=collector,
    )
    network.register(peer)
    return peer


@pytest.fixture
def peer_factory(simulator, network, protocol_config, cost_model, effort_scheme, collector):
    """Factory fixture producing registered peers that share one world."""

    counter = {"n": 0}

    def factory(peer_id: str = None, config: ProtocolConfig = None) -> Peer:
        counter["n"] += 1
        pid = peer_id if peer_id is not None else "peer-%02d" % counter["n"]
        return make_peer(
            pid,
            simulator,
            network,
            config if config is not None else protocol_config,
            cost_model,
            effort_scheme,
            collector,
            seed=counter["n"],
        )

    return factory
