"""Integration tests for the world builder and baseline (no-attack) runs."""

import pytest

from repro import units
from repro.config import smoke_config
from repro.experiments.world import build_world
from repro.experiments.runner import run_single


class TestBuildWorld:
    def test_world_has_expected_shape(self):
        protocol, sim = smoke_config()
        world = build_world(protocol, sim)
        assert len(world.peers) == sim.n_peers
        assert len(world.aus) == sim.n_aus
        for peer in world.peers:
            assert len(peer.replicas) == sim.n_aus
            for au in world.aus:
                state = peer.au_state(au.au_id)
                assert len(state.reference_list) == sim.initial_reference_list_size
                assert peer.peer_id not in state.reference_list
                assert len(state.reference_list.friends) == sim.friends_list_size

    def test_every_peer_is_registered_on_the_network(self):
        protocol, sim = smoke_config()
        world = build_world(protocol, sim)
        for peer in world.peers:
            assert world.network.is_registered(peer.peer_id)

    def test_world_cannot_be_started_twice(self):
        protocol, sim = smoke_config()
        world = build_world(protocol, sim)
        world.start()
        with pytest.raises(RuntimeError):
            world.start()


class TestBaselineRun:
    @pytest.fixture(scope="class")
    def baseline(self):
        protocol, sim = smoke_config()
        world = build_world(protocol, sim)
        metrics = world.run()
        return world, metrics

    def test_polls_happen_at_roughly_the_configured_rate(self, baseline):
        world, metrics = baseline
        protocol = world.protocol_config
        sim = world.sim_config
        # Each (peer, AU) series should complete roughly duration/interval
        # polls; allow generous slack for start offsets and stragglers.
        expected = sim.n_peers * sim.n_aus * (sim.duration / protocol.poll_interval)
        assert metrics.total_polls >= 0.5 * expected
        assert metrics.total_polls <= 1.5 * expected

    def test_most_polls_succeed_absent_an_attack(self, baseline):
        _, metrics = baseline
        assert metrics.successful_polls > 0
        success_rate = metrics.successful_polls / max(1, metrics.total_polls)
        assert success_rate > 0.7

    def test_access_failure_probability_is_small(self, baseline):
        _, metrics = baseline
        assert 0.0 <= metrics.access_failure_probability < 0.2

    def test_damage_is_eventually_repaired(self, baseline):
        world, metrics = baseline
        if metrics.extras["storage_failures"] == 0:
            pytest.skip("no damage was injected in this seed")
        # Not every replica needs to be clean at the very end (damage may be
        # recent), but the population cannot have accumulated all the damage.
        damaged_now = sum(peer.replicas.damaged_count() for peer in world.peers)
        assert damaged_now <= metrics.extras["storage_failures"]

    def test_loyal_effort_is_accounted(self, baseline):
        world, metrics = baseline
        assert metrics.loyal_effort > 0
        categories = world.loyal_effort().by_category
        assert categories.get("hash", 0) > 0
        assert categories.get("proof", 0) > 0
        assert categories.get("verify", 0) > 0

    def test_no_adversary_means_zero_adversary_effort(self, baseline):
        _, metrics = baseline
        assert metrics.adversary_effort == 0.0

    def test_no_operator_alarms_in_baseline(self, baseline):
        _, metrics = baseline
        assert metrics.extras["alarms"] == 0


class TestDeterminism:
    def test_same_seed_reproduces_metrics(self):
        protocol, sim = smoke_config(seed=7)
        first = run_single(protocol, sim)
        second = run_single(protocol, sim)
        assert first.access_failure_probability == second.access_failure_probability
        assert first.successful_polls == second.successful_polls
        assert first.loyal_effort == pytest.approx(second.loyal_effort)

    def test_different_seeds_differ(self):
        protocol, sim = smoke_config(seed=7)
        first = run_single(protocol, sim)
        second = run_single(protocol, sim.with_overrides(seed=8))
        assert (
            first.loyal_effort != pytest.approx(second.loyal_effort)
            or first.successful_polls != second.successful_polls
        )
