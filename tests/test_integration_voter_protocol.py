"""Integration tests of the voter-side filters and session state machine.

A scripted "poller" node crafts individual protocol messages so each defense
can be exercised in isolation: bogus introductory effort, desertion after the
Poll, desertion after the PollProof, forged receipts, repair service, and
schedule-driven refusals.
"""

import pytest

from repro import units
from repro.core.messages import (
    EvaluationReceipt,
    Poll,
    PollAck,
    PollProof,
    RepairRequest,
    Vote,
    message_size,
)
from repro.core.reputation import Grade
from repro.core.voter import VoterState
from repro.sim.network import Node


class ScriptedPoller(Node):
    """A network node that records replies and sends hand-crafted messages."""

    def __init__(self, node_id, network):
        super().__init__(node_id)
        self.network = network
        self.received = []
        network.register(self)

    def receive_message(self, message):
        self.received.append(message.payload)

    def send(self, recipient, payload):
        self.network.send(self.node_id, recipient, payload, message_size(payload, n_blocks=8))

    def payloads(self, cls):
        return [p for p in self.received if isinstance(p, cls)]


@pytest.fixture
def victim(peer_factory, small_au):
    """A single loyal peer preserving one AU, with an empty reference list."""
    peer = peer_factory("victim")
    peer.add_au(small_au, friends=(), initial_reference_list=())
    return peer


@pytest.fixture
def scripted(network):
    return ScriptedPoller("scripted-poller", network)


def admitted_invitation(victim, scripted, small_au, simulator, effort_scheme, poll_id="poll-1"):
    """Send a valid invitation, marking the scripted poller EVEN so it is admitted."""
    state = victim.au_state(small_au.au_id)
    state.known_peers.set_grade(scripted.node_id, Grade.EVEN, simulator.now)
    effort = victim.effort_policy.solicitation(small_au)
    invitation = Poll(
        poll_id=poll_id,
        au_id=small_au.au_id,
        poller_id=scripted.node_id,
        vote_deadline=simulator.now + 20 * units.DAY,
        introductory_effort=effort_scheme.generate(scripted.node_id, effort.introductory),
    )
    scripted.send(victim.peer_id, invitation)
    return invitation, effort


class TestInvitationFiltering:
    def test_valid_invitation_from_known_peer_is_accepted(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        admitted_invitation(victim, scripted, small_au, simulator, effort_scheme)
        simulator.run(until=units.HOUR)
        acks = scripted.payloads(PollAck)
        assert len(acks) == 1
        assert acks[0].accepted
        assert victim.active_voter_sessions() == 1

    def test_bogus_introductory_effort_is_rejected_and_penalized(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        state = victim.au_state(small_au.au_id)
        state.known_peers.set_grade(scripted.node_id, Grade.EVEN, 0.0)
        invitation = Poll(
            poll_id="bogus-1",
            au_id=small_au.au_id,
            poller_id=scripted.node_id,
            vote_deadline=simulator.now + 20 * units.DAY,
            introductory_effort=effort_scheme.forge(scripted.node_id, claimed_cost=100.0),
        )
        scripted.send(victim.peer_id, invitation)
        simulator.run(until=units.HOUR)
        assert scripted.payloads(PollAck) == []
        assert victim.active_voter_sessions() == 0
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT

    def test_unknown_au_is_ignored(self, simulator, victim, scripted, small_au, effort_scheme):
        invitation = Poll(
            poll_id="x",
            au_id="not-preserved-here",
            poller_id=scripted.node_id,
            vote_deadline=simulator.now + units.DAY,
            introductory_effort=effort_scheme.generate(scripted.node_id, 1.0),
        )
        scripted.send(victim.peer_id, invitation)
        simulator.run(until=units.HOUR)
        assert scripted.received == []
        assert victim.effort.total == 0.0

    def test_busy_schedule_leads_to_refusal(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        # Fill the victim's schedule for the next 30 days.
        victim.schedule.reserve_at(0.0, 30 * units.DAY, label="busy")
        admitted_invitation(victim, scripted, small_au, simulator, effort_scheme)
        simulator.run(until=units.HOUR)
        acks = scripted.payloads(PollAck)
        assert len(acks) == 1
        assert not acks[0].accepted
        assert acks[0].reason == "busy"
        assert victim.active_voter_sessions() == 0

    def test_duplicate_poll_id_is_ignored(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        admitted_invitation(victim, scripted, small_au, simulator, effort_scheme)
        simulator.run(until=units.HOUR)
        # Re-sending the same invitation must not open a second session.
        admitted_invitation(victim, scripted, small_au, simulator, effort_scheme)
        simulator.run(until=2 * units.HOUR)
        assert victim.active_voter_sessions() == 1


class TestDesertionAndWastefulAttacks:
    def test_poller_desertion_after_poll_penalizes_and_frees_slot(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        """INTRO desertion: no PollProof ever arrives (reservation attack)."""
        admitted_invitation(victim, scripted, small_au, simulator, effort_scheme)
        simulator.run(until=units.HOUR)
        assert victim.active_voter_sessions() == 1
        reserved_before = victim.schedule.total_reserved
        simulator.run(until=victim.config.poll_proof_timeout + 2 * units.HOUR)
        assert victim.active_voter_sessions() == 0
        assert victim.schedule.total_reserved < reserved_before
        state = victim.au_state(small_au.au_id)
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT

    def test_underpaid_poll_proof_is_rejected(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        invitation, effort = admitted_invitation(
            victim, scripted, small_au, simulator, effort_scheme
        )
        simulator.run(until=units.HOUR)
        proof = PollProof(
            poll_id=invitation.poll_id,
            au_id=small_au.au_id,
            poller_id=scripted.node_id,
            nonce=b"n" * 20,
            remaining_effort=effort_scheme.generate(scripted.node_id, effort.remaining * 0.1),
        )
        scripted.send(victim.peer_id, proof)
        simulator.run(until=units.DAY)
        assert scripted.payloads(Vote) == []
        assert victim.active_voter_sessions() == 0
        state = victim.au_state(small_au.au_id)
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT

    def _drive_to_vote(self, simulator, victim, scripted, small_au, effort_scheme):
        invitation, effort = admitted_invitation(
            victim, scripted, small_au, simulator, effort_scheme
        )
        simulator.run(until=units.HOUR)
        remaining_proof = effort_scheme.generate(scripted.node_id, effort.remaining)
        proof = PollProof(
            poll_id=invitation.poll_id,
            au_id=small_au.au_id,
            poller_id=scripted.node_id,
            nonce=b"n" * 20,
            remaining_effort=remaining_proof,
        )
        scripted.send(victim.peer_id, proof)
        ack = scripted.payloads(PollAck)[0]
        simulator.run(until=ack.estimated_completion + units.HOUR)
        return invitation, remaining_proof

    def test_valid_exchange_produces_a_vote_with_nominations_capability(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        invitation, _ = self._drive_to_vote(simulator, victim, scripted, small_au, effort_scheme)
        votes = scripted.payloads(Vote)
        assert len(votes) == 1
        assert votes[0].poll_id == invitation.poll_id
        assert not votes[0].bogus
        assert votes[0].vote_proof is not None and votes[0].vote_proof.valid
        # The victim's reference list is empty, so no nominations; the vote
        # is still valid.
        assert votes[0].nominations == ()
        # Supplying a vote puts the poller in this voter's debt.
        state = victim.au_state(small_au.au_id)
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT

    def test_voter_serves_repair_requests_after_voting(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        invitation, _ = self._drive_to_vote(simulator, victim, scripted, small_au, effort_scheme)
        request = RepairRequest(
            poll_id=invitation.poll_id,
            au_id=small_au.au_id,
            poller_id=scripted.node_id,
            block_index=3,
        )
        scripted.send(victim.peer_id, request)
        simulator.run(until=simulator.now + units.HOUR)
        from repro.core.messages import Repair

        repairs = scripted.payloads(Repair)
        assert len(repairs) == 1
        assert repairs[0].block_index == 3
        assert repairs[0].source_tag is None  # victim's replica is undamaged

    def test_valid_receipt_closes_the_session_without_penalty(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        invitation, remaining_proof = self._drive_to_vote(
            simulator, victim, scripted, small_au, effort_scheme
        )
        receipt = EvaluationReceipt(
            poll_id=invitation.poll_id,
            au_id=small_au.au_id,
            poller_id=scripted.node_id,
            receipt=remaining_proof.byproduct,
        )
        scripted.send(victim.peer_id, receipt)
        simulator.run(until=simulator.now + units.HOUR)
        assert victim.active_voter_sessions() == 0
        state = victim.au_state(small_au.au_id)
        # Supplying the vote lowered the scripted poller to DEBT; a valid
        # receipt must not penalize further (it stays DEBT, not worse), and
        # the session is cleanly closed.
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT

    def test_forged_receipt_is_detected(self, simulator, victim, scripted, small_au, effort_scheme):
        invitation, _ = self._drive_to_vote(simulator, victim, scripted, small_au, effort_scheme)
        receipt = EvaluationReceipt(
            poll_id=invitation.poll_id,
            au_id=small_au.au_id,
            poller_id=scripted.node_id,
            receipt=b"forged-receipt-bytes",
        )
        scripted.send(victim.peer_id, receipt)
        simulator.run(until=simulator.now + units.HOUR)
        assert victim.active_voter_sessions() == 0
        state = victim.au_state(small_au.au_id)
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT

    def test_missing_receipt_times_out_and_penalizes(
        self, simulator, victim, scripted, small_au, effort_scheme
    ):
        invitation, _ = self._drive_to_vote(simulator, victim, scripted, small_au, effort_scheme)
        session = victim.voter_session(invitation.poll_id)
        assert session is not None and session.state == VoterState.VOTED
        # Never send a receipt; wait past the receipt deadline.
        simulator.run(until=invitation.vote_deadline + victim.config.receipt_timeout_slack + units.DAY)
        assert victim.active_voter_sessions() == 0
        state = victim.au_state(small_au.au_id)
        assert state.known_peers.grade_of(scripted.node_id, simulator.now) is Grade.DEBT
