"""CLI coverage for the campaign/store subcommands and the bench harness."""

from pathlib import Path

import pytest

from repro import units
from repro.api import AdversarySpec, Campaign, ResultStore, Scenario
from repro.cli import build_parser, main
from repro.experiments.runner import clear_baseline_cache

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "bench_baseline.json"


@pytest.fixture(autouse=True)
def _clear_cache():
    clear_baseline_cache()
    yield
    clear_baseline_cache()


def campaign_file(tmp_path, exporter="attack_sweep"):
    scenario = Scenario(
        name="cli campaign",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 45.0, "coverage": 1.0, "recuperation_days": 15.0},
        ),
        seeds=(1,),
    )
    campaign = Campaign.from_grid(
        "cli-campaign",
        scenario,
        {"adversary.attack_duration_days": [30.0, 60.0]},
        exporter=exporter,
    )
    return campaign, campaign.save(tmp_path / "campaign.json")


class TestCampaignParser:
    def test_campaign_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_options_parse(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "run",
                "fig2_baseline",
                "--store",
                "/tmp/x",
                "--workers",
                "2",
                "--max-points",
                "2",
            ]
        )
        assert args.campaign == "fig2_baseline"
        assert args.max_points == 2
        assert args.workers == 2

    def test_store_prune_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "prune"])


class TestCampaignExecution:
    def test_run_status_resume_report_cycle(self, tmp_path, capsys):
        campaign, path = campaign_file(tmp_path)
        store = str(tmp_path / "store")

        assert main(["campaign", "run", str(path), "--store", store,
                     "--max-points", "1"]) == 0
        output = capsys.readouterr().out
        assert "1/2 points complete" in output
        assert "campaign resume" in output

        assert main(["campaign", "status", str(path), "--store", store]) == 0
        output = capsys.readouterr().out
        assert "pending" in output and "complete" in output

        assert main(["campaign", "resume", str(path), "--store", store]) == 0
        output = capsys.readouterr().out
        assert "2 points complete" in output
        assert "delay_ratio" in output

        assert main(["campaign", "report", str(path), "--store", store]) == 0
        output = capsys.readouterr().out
        assert "result digest:" in output

    def test_run_without_store_prints_rows(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        assert main(["campaign", "run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "2 points complete" in output
        assert "coefficient_of_friction" in output

    def test_resume_and_report_need_a_store(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        assert main(["campaign", "resume", str(path)]) == 2
        assert "--store" in capsys.readouterr().out
        assert main(["campaign", "report", str(path)]) == 2
        assert "--store" in capsys.readouterr().out

    def test_report_on_incomplete_campaign_fails(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        store = str(tmp_path / "store")
        main(["campaign", "run", str(path), "--store", store, "--max-points", "1"])
        capsys.readouterr()
        assert main(["campaign", "report", str(path), "--store", store]) == 2
        assert "incomplete" in capsys.readouterr().out

    def test_unknown_campaign_reference_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "status", "no_such_artifact"])

    def test_named_artifact_resolves_from_the_bench_registry(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "status", "fig2_baseline", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "0/4 points complete" in output

    def test_report_check_digest_against_baseline(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "fig2_baseline", "--store", store]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "campaign",
                    "report",
                    "fig2_baseline",
                    "--store",
                    store,
                    "--check-digest",
                    str(BASELINE),
                ]
            )
            == 0
        )
        assert "matches the committed baseline" in capsys.readouterr().out

    def test_report_check_digest_fails_on_unknown_key(self, tmp_path, capsys):
        _, path = campaign_file(tmp_path)
        store = str(tmp_path / "store")
        main(["campaign", "run", str(path), "--store", store])
        capsys.readouterr()
        # The hand-written campaign has no digest in the committed baseline.
        assert (
            main(
                [
                    "campaign",
                    "report",
                    str(path),
                    "--store",
                    store,
                    "--check-digest",
                    str(BASELINE),
                ]
            )
            == 1
        )
        assert "no baseline digest" in capsys.readouterr().out


class TestStorePrune:
    def test_prune_removes_temp_files_and_kinds(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.save_json("runs", "d1", [])
        store.save_json("result", "d2", {})
        (tmp_path / "runs-torn.json.abc123.tmp").write_text("{torn", encoding="utf-8")

        assert main(["store", "prune", "--store", str(tmp_path)]) == 0
        assert "pruned 1 item(s)" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.tmp"))
        assert store.load_json("runs", "d1") == []

        assert main(["store", "prune", "--store", str(tmp_path), "--kind", "runs"]) == 0
        capsys.readouterr()
        assert store.load_json("runs", "d1") is None
        assert store.load_json("result", "d2") == {}

    def test_prune_rejects_invalid_kind(self, tmp_path, capsys):
        assert (
            main(["store", "prune", "--store", str(tmp_path), "--kind", "../evil"]) == 2
        )
        assert "invalid artifact kind" in capsys.readouterr().out


class TestBenchQuick:
    def test_bench_quick_checks_digests_against_the_baseline(self, capsys):
        exit_code = main(
            [
                "bench",
                "--quick",
                "--out",
                "",
                "--baseline",
                str(BASELINE),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "all result digests match the committed baseline" in output
        for artifact in ("fig2_baseline", "fig3_pipe_stoppage", "fig6_admission",
                         "paper_smoke_100"):
            assert artifact in output

    def test_bench_rejects_unknown_artifacts(self):
        with pytest.raises(ValueError):
            main(["bench", "--artifacts", "not_a_real_artifact", "--out", ""])
