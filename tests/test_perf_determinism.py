"""Determinism regression tests for the simulation-kernel fast path.

The kernel optimizations (slab-free event scheduling, network fast paths,
memoized effort pricing, the single-draw nonce) are only admissible because
they keep simulation results bit-identical.  These tests pin that contract:

* the pipe-stoppage smoke scenario produces byte-identical ``ResultStore``
  artifacts (digests *and* full metric payloads) when run twice, serially
  and on a two-worker process pool;
* ``make_nonce`` consumes the documented version-2 RNG stream (one
  ``getrandbits(8 * n)`` draw) and leaves the stream exactly where a
  reference single-draw implementation would.
"""

import json
import random
from pathlib import Path

from repro import units
from repro.api import ResultStore, Scenario, Session
from repro.api.scenario import AdversarySpec
from repro.config import smoke_config
from repro.crypto.hashing import NONCE_STREAM_VERSION, make_nonce


def _smoke_scenario() -> Scenario:
    """The pipe-stoppage smoke scenario (short horizon to stay test-fast)."""
    protocol, sim = smoke_config(seed=1)
    scenario = Scenario.from_configs(
        "smoke pipe stoppage",
        protocol,
        sim.with_overrides(duration=units.months(5)),
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 45.0, "coverage": 1.0, "recuperation_days": 15.0},
        ),
        seeds=(1, 2),
    )
    return scenario


def _store_artifacts(root: Path) -> dict:
    """Map artifact file name -> raw bytes for every store artifact."""
    return {path.name: path.read_bytes() for path in sorted(root.glob("*.json"))}


class TestSerialParallelBitIdentity:
    def test_smoke_scenario_digests_and_payloads_identical(self, tmp_path):
        scenario = _smoke_scenario()

        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = Session(workers=1, store=ResultStore(serial_dir))
        parallel = Session(workers=2, store=ResultStore(parallel_dir))

        serial_result = serial.run(scenario)
        parallel_result = parallel.run(scenario)

        # Same scenario content digest keys both runs.
        assert serial_result.scenario_digest == parallel_result.scenario_digest

        serial_artifacts = _store_artifacts(serial_dir)
        parallel_artifacts = _store_artifacts(parallel_dir)

        # Identical digest-keyed artifact file names on both sides...
        assert set(serial_artifacts) == set(parallel_artifacts)
        assert serial_artifacts  # the store actually persisted runs
        # ...and byte-identical payloads (digests AND full metric payloads).
        for name, payload in serial_artifacts.items():
            assert payload == parallel_artifacts[name], name

    def test_rerun_is_bit_identical_to_first_run(self, tmp_path):
        scenario = _smoke_scenario()
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        Session(workers=1, store=ResultStore(first_dir)).run(scenario)
        Session(workers=1, store=ResultStore(second_dir)).run(scenario)
        assert _store_artifacts(first_dir) == _store_artifacts(second_dir)

    def test_metric_payloads_round_trip_equal(self, tmp_path):
        scenario = _smoke_scenario()
        store = ResultStore(tmp_path / "store")
        result = Session(workers=1, store=store).run(scenario)
        persisted = store.load_json("result", scenario.digest)
        assert persisted is not None
        assert persisted == json.loads(json.dumps(result.to_dict()))


class TestNonceStream:
    def test_nonce_stream_version_is_two(self):
        assert NONCE_STREAM_VERSION == 2

    def test_make_nonce_single_draw_consumption(self):
        # The version-2 contract: one getrandbits(8 * n) call, big-endian
        # bytes.  Both the value and the post-call stream state must match a
        # reference single-draw implementation exactly.
        rng = random.Random(12345)
        reference = random.Random(12345)

        nonce = make_nonce(rng)
        expected = reference.getrandbits(160).to_bytes(20, "big")
        assert nonce == expected
        assert len(nonce) == 20
        # Stream left in exactly the same state.
        assert rng.getstate() == reference.getstate()
        assert rng.random() == reference.random()

    def test_make_nonce_custom_width_and_degenerate(self):
        rng = random.Random(7)
        reference = random.Random(7)
        assert make_nonce(rng, n_bytes=5) == reference.getrandbits(40).to_bytes(5, "big")
        assert make_nonce(rng, n_bytes=0) == b""
        # Zero-width draws consume nothing.
        assert rng.getstate() == reference.getstate()

    def test_nonces_differ_across_draws(self):
        rng = random.Random(1)
        assert make_nonce(rng) != make_nonce(rng)
