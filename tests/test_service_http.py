"""HTTP service API: routing, submission, remote workers, and error paths.

Routing tests drive :meth:`ExperimentService.handle` directly (no
sockets); the end-to-end tests run a real ``ThreadingHTTPServer`` on an
ephemeral port with :class:`HttpBrokerClient` workers — including an
abandoned-lease steal over HTTP.
"""

import pytest

from repro import units
from repro.api import Campaign, CampaignRunner, Scenario, Session
from repro.service import HttpBrokerClient, Worker, make_server
from repro.service.http_api import ExperimentService
from repro.service.sqlite_store import SQLiteResultStore


def smoke_campaign(points=2, name="http-smoke"):
    base = Scenario(
        name="http test",
        base="smoke",
        sim={"duration": units.months(2)},
        seeds=(1,),
    )
    return Campaign.from_grid(name, base, {"sim.n_aus": list(range(1, points + 1))})


@pytest.fixture
def store(tmp_path):
    return SQLiteResultStore(tmp_path / "svc.db")


@pytest.fixture
def service(store):
    return ExperimentService(store, lease_seconds=10.0)


class TestRouting:
    def test_health(self, service):
        status, payload = service.handle("GET", "/api/health")
        assert status == 200
        assert payload["ok"] is True
        assert payload["outstanding"] == 0

    def test_submit_and_status(self, service):
        status, payload = service.handle(
            "POST", "/api/campaigns", smoke_campaign().to_dict()
        )
        assert status == 200
        digest = payload["digest"]
        assert payload["counts"]["pending"] == 2

        status, listing = service.handle("GET", "/api/campaigns")
        assert [c["digest"] for c in listing["campaigns"]] == [digest]

        status, detail = service.handle("GET", "/api/campaigns/%s" % digest)
        assert status == 200
        assert len(detail["points"]) == 2

        status, slim = service.handle(
            "GET", "/api/campaigns/%s?points=0" % digest
        )
        assert status == 200
        assert slim["points"] == []

    def test_lease_heartbeat_fail_cycle(self, service):
        _, submitted = service.handle(
            "POST", "/api/campaigns", smoke_campaign(1).to_dict()
        )
        status, leased = service.handle("POST", "/api/lease", {"worker": "w1"})
        assert status == 200
        lease = leased["lease"]
        assert lease["index"] == 0
        assert leased["outstanding"] == 1

        status, beat = service.handle(
            "POST",
            "/api/heartbeat",
            {"worker": "w1", "campaign": lease["campaign"], "index": 0},
        )
        assert beat["ok"] is True

        status, failed = service.handle(
            "POST",
            "/api/fail",
            {"worker": "w1", "campaign": lease["campaign"], "index": 0, "error": "x"},
        )
        assert failed["ok"] is True

        status, requeued = service.handle(
            "POST", "/api/campaigns/%s/requeue" % lease["campaign"], {}
        )
        assert requeued["requeued"] == 1

    def test_complete_persists_shipped_artifacts(self, service, store):
        _, submitted = service.handle(
            "POST", "/api/campaigns", smoke_campaign(1).to_dict()
        )
        _, leased = service.handle("POST", "/api/lease", {"worker": "w1"})
        lease = leased["lease"]
        status, done = service.handle(
            "POST",
            "/api/complete",
            {
                "worker": "w1",
                "campaign": lease["campaign"],
                "index": lease["index"],
                "digest": lease["digest"],
                "result": {"fake": True},
                "runs": {"run-d1": {"fake_run": True}},
            },
        )
        assert done["ok"] is True
        assert store.load_json("result", lease["digest"]) == {"fake": True}
        assert store.load_json("runs", "run-d1") == [{"fake_run": True}]

    def test_error_paths(self, service):
        assert service.handle("GET", "/nope")[0] == 404
        assert service.handle("GET", "/api/nope")[0] == 404
        assert service.handle("POST", "/api/lease", {})[0] == 400  # no worker
        assert service.handle("GET", "/api/campaigns/NOT-A-DIGEST")[0] == 400
        assert service.handle("GET", "/api/campaigns/%s" % ("ab" * 32))[0] == 404
        # Rows for a submitted-but-unrun campaign: incomplete, not a crash.
        _, submitted = service.handle(
            "POST", "/api/campaigns", smoke_campaign(1).to_dict()
        )
        status, payload = service.handle(
            "GET", "/api/campaigns/%s/rows" % submitted["digest"]
        )
        assert status == 409
        assert "incomplete" in payload["error"]


@pytest.fixture
def server(store):
    instance = make_server(store, port=0, lease_seconds=2.0)
    import threading

    threading.Thread(target=instance.serve_forever, daemon=True).start()
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture
def client(server):
    return HttpBrokerClient("http://127.0.0.1:%d" % server.server_address[1])


class TestEndToEnd:
    def test_remote_worker_drains_the_queue(self, store, client):
        campaign = smoke_campaign(2)
        submitted = client.submit(campaign.to_dict())
        digest = submitted["digest"]

        stats = Worker(
            client, session=Session(), worker_id="remote", poll_interval=0.05
        ).run()
        assert stats["completed"] == 2
        assert stats["failed"] == 0

        final = client.request("GET", "/api/campaigns/%s?points=0" % digest)
        assert final["complete"] is True

        # The server persisted the shipped artifacts: a store-side runner
        # reproduces the rows (and their digest) from them.
        rows_payload = client.request("GET", "/api/campaigns/%s/rows" % digest)
        local_rows = CampaignRunner(Session(store=store)).rows(campaign)
        assert rows_payload["rows"] == local_rows

        workers = client.request("GET", "/api/workers")["workers"]
        assert workers[0]["worker"] == "remote"
        assert workers[0]["completed"] == 2

    def test_abandoned_lease_is_stolen_over_http(self, client):
        campaign = smoke_campaign(1)
        client.submit(campaign.to_dict())

        # A "crashed" worker: leases the only point and never comes back.
        abandoned, outstanding = client.lease("ghost")
        assert abandoned is not None
        assert outstanding == 1

        # A live worker polls until the 2s lease expires, then finishes it.
        stats = Worker(
            client, session=Session(), worker_id="live", poll_interval=0.1
        ).run()
        assert stats["completed"] == 1
