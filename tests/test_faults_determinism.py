"""Determinism and replay guarantees for faulted runs.

The acceptance properties: a faulted run is bit-identical across
serial/parallel execution and record-on/record-off, and a recorded faulted
trace replays with zero divergence.
"""

import pytest

from repro import units
from repro.api import AdversarySpec, ResultStore, Scenario, Session
from repro.api.session import execute_point
from repro.replay import (
    filter_records,
    iter_records,
    metrics_digest,
    record_run,
    replay_trace,
)

FAULTS = {
    "crash": {"rate_per_peer_per_year": 6.0, "mean_downtime_days": 3.0},
    "churn": {"rate_per_peer_per_year": 3.0, "mean_downtime_days": 10.0},
    "partitions": [{"start_day": 45.0, "duration_days": 10.0, "fraction": 0.4}],
}


def faulted_scenario(**overrides):
    fields = dict(
        name="faulted determinism",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "admission_flood",
            {"attack_duration_days": 60.0, "coverage": 1.0},
        ),
        faults=FAULTS,
        seeds=(1, 2),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestExecutionDeterminism:
    def test_same_seed_reproduces_faulted_metrics(self):
        scenario = faulted_scenario(seeds=(1,))
        first = execute_point(scenario, 1)
        second = execute_point(scenario, 1)
        assert metrics_digest(first) == metrics_digest(second)
        assert first.extras["fault_crashes"] > 0

    def test_parallel_is_bit_identical_to_serial(self):
        scenario = faulted_scenario()
        serial = Session(workers=1).run(scenario)
        with Session(workers=2) as parallel:
            pooled = parallel.run(scenario)
        assert [metrics_digest(run) for run in serial.attacked_runs] == [
            metrics_digest(run) for run in pooled.attacked_runs
        ]
        assert [metrics_digest(run) for run in serial.baseline_runs] == [
            metrics_digest(run) for run in pooled.baseline_runs
        ]

    def test_baseline_runs_the_fault_plan_too(self):
        result = Session().run(faulted_scenario(seeds=(1,)))
        for run in result.baseline_runs:
            assert run.extras["fault_crashes"] > 0

    def test_fault_lanes_do_not_perturb_the_unfaulted_path(self):
        # Same scenario modulo faults: the faulted run must differ (faults
        # do real damage), while two unfaulted runs stay identical — the
        # fault lanes never steal draws from other subsystems.
        bare = faulted_scenario(faults={}, seeds=(1,))
        assert metrics_digest(execute_point(bare, 1)) == metrics_digest(
            execute_point(bare, 1)
        )
        faulted = faulted_scenario(seeds=(1,))
        assert metrics_digest(execute_point(faulted, 1)) != metrics_digest(
            execute_point(bare, 1)
        )


class TestFaultedReplay:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        scenario = faulted_scenario(seeds=(1,))
        path = tmp_path_factory.mktemp("traces") / "faulted.jsonl.gz"
        metrics = record_run(scenario, 1, path)
        return scenario, path, metrics

    def test_record_on_metrics_match_record_off(self, recorded):
        scenario, _, recorded_metrics = recorded
        plain = execute_point(scenario, 1)
        assert metrics_digest(plain) == metrics_digest(recorded_metrics)

    def test_trace_contains_fault_records(self, recorded):
        _, path, _ = recorded
        events = [
            record[3]
            for record in filter_records(iter_records(path), kinds=["fault"])
        ]
        assert "crash" in events
        assert "restart" in events
        assert "leave" in events
        assert "partition_start" in events
        assert "partition_end" in events

    def test_faulted_trace_replays_with_zero_divergence(self, recorded):
        _, path, _ = recorded
        # replay_trace raises ReplayDivergence on the first mismatch, so a
        # returned report IS the zero-divergence guarantee.
        report = replay_trace(path)
        assert report.records_checked > 0
        assert report.metrics_digest

    def test_session_records_faulted_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        session = Session(store=store, record=True)
        session.run_metrics(faulted_scenario(seeds=(1,)))
        traces = store.trace_paths()
        assert traces
        fault_records = list(
            filter_records(iter_records(traces[0]), kinds=["fault"])
        )
        assert fault_records
