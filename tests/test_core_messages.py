"""Unit tests for protocol messages and wire-size estimation."""

import pytest

from repro.core.messages import (
    EvaluationReceipt,
    Poll,
    PollAck,
    PollProof,
    Repair,
    RepairRequest,
    Vote,
    message_size,
)
from repro.crypto.effort import EffortScheme


@pytest.fixture
def scheme():
    return EffortScheme()


def make_poll(scheme):
    return Poll(
        poll_id="p1",
        au_id="au",
        poller_id="poller",
        vote_deadline=1000.0,
        introductory_effort=scheme.generate("poller", 1.0),
    )


class TestMessageConstruction:
    def test_poll_fields(self, scheme):
        poll = make_poll(scheme)
        assert poll.poller_id == "poller"
        assert poll.introductory_effort.valid

    def test_poll_ack_refusal_carries_reason(self):
        ack = PollAck(poll_id="p1", au_id="au", voter_id="v", accepted=False, reason="busy")
        assert not ack.accepted
        assert ack.reason == "busy"

    def test_vote_defaults_not_bogus(self):
        vote = Vote(
            poll_id="p1",
            au_id="au",
            voter_id="v",
            block_tags={3: 17},
            nominations=("a", "b"),
            vote_proof=None,
        )
        assert not vote.bogus
        assert vote.block_tags == {3: 17}

    def test_messages_are_slotted(self, scheme):
        # Messages are slotted (no __dict__) for construction speed on the
        # simulation hot path; immutability is by convention (nothing may
        # mutate a message after Network.send), and slots still guarantee no
        # stray attributes can be attached in transit.
        poll = make_poll(scheme)
        with pytest.raises(AttributeError):
            poll.injected_field = 1  # type: ignore[attr-defined]
        assert not hasattr(poll, "__dict__")

    def test_repair_carries_source_tag(self):
        repair = Repair(
            poll_id="p", au_id="au", voter_id="v", block_index=2, source_tag=None, block_size=1024
        )
        assert repair.source_tag is None
        assert repair.block_index == 2


class TestMessageSize:
    def test_every_message_type_has_a_size(self, scheme):
        poll = make_poll(scheme)
        messages = [
            poll,
            PollAck(poll_id="p", au_id="au", voter_id="v", accepted=True),
            PollProof(
                poll_id="p", au_id="au", poller_id="x", nonce=b"n" * 20,
                remaining_effort=scheme.generate("x", 1.0),
            ),
            Vote(
                poll_id="p", au_id="au", voter_id="v", block_tags={}, nominations=(),
                vote_proof=None,
            ),
            RepairRequest(poll_id="p", au_id="au", poller_id="x", block_index=0),
            Repair(
                poll_id="p", au_id="au", voter_id="v", block_index=0, source_tag=None,
                block_size=4096,
            ),
            EvaluationReceipt(poll_id="p", au_id="au", poller_id="x", receipt=b"r" * 20),
        ]
        for message in messages:
            assert message_size(message, n_blocks=8) > 0

    def test_vote_size_scales_with_blocks(self):
        vote = Vote(
            poll_id="p", au_id="au", voter_id="v", block_tags={}, nominations=(),
            vote_proof=None,
        )
        assert message_size(vote, n_blocks=512) > message_size(vote, n_blocks=8)

    def test_vote_size_includes_nominations(self):
        few = Vote(
            poll_id="p", au_id="au", voter_id="v", block_tags={}, nominations=("a",),
            vote_proof=None,
        )
        many = Vote(
            poll_id="p", au_id="au", voter_id="v", block_tags={},
            nominations=tuple("p%d" % i for i in range(10)), vote_proof=None,
        )
        assert message_size(many, n_blocks=8) > message_size(few, n_blocks=8)

    def test_repair_is_dominated_by_block_size(self):
        repair = Repair(
            poll_id="p", au_id="au", voter_id="v", block_index=0, source_tag=None,
            block_size=1024 * 1024,
        )
        assert message_size(repair) >= 1024 * 1024

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            message_size(object())

    def test_poll_is_small_relative_to_repair(self, scheme):
        poll = make_poll(scheme)
        repair = Repair(
            poll_id="p", au_id="au", voter_id="v", block_index=0, source_tag=None,
            block_size=1024 * 1024,
        )
        assert message_size(poll) < message_size(repair) / 100
