"""Backend-parity contract suite for the two ResultStore implementations.

Every test in ``TestStoreContract`` runs against both the directory
backend and the SQLite backend through one parameterized fixture — the
service subsystem is only sound if the two are observably interchangeable
behind the ``ResultStore`` interface (save/load/has, runs round-trips,
corrupt-artifact quarantine, traces, prune/clear/stats).  Selection and
migration (:func:`repro.api.store.open_store`,
:func:`repro.api.store.migrate_store`) are covered at the end.
"""

import gzip
import json

import pytest

from repro import units
from repro.api import ResultStore, Scenario, Session
from repro.api.store import SQLITE_SUFFIXES, migrate_store, open_store
from repro.service.sqlite_store import SQLiteResultStore


def smoke_scenario(**overrides):
    fields = dict(
        name="backend test",
        base="smoke",
        sim={"duration": units.months(3)},
        seeds=(1,),
    )
    fields.update(overrides)
    return Scenario(**fields)


def write_fake_trace(store, digest, lines, complete=True):
    path = store.trace_path(digest)
    with gzip.open(path, "wb") as stream:
        for line in lines:
            stream.write(json.dumps(line).encode() + b"\n")
        if complete:
            stream.write(b'["end", 0, 0, "digest"]\n')
    return path


@pytest.fixture(params=["directory", "sqlite"])
def store(request, tmp_path):
    if request.param == "directory":
        yield ResultStore(tmp_path / "store")
    else:
        yield SQLiteResultStore(tmp_path / "store.db")


def corrupt_artifact(store, kind, digest):
    """Damage one persisted artifact through backend-appropriate means."""
    if isinstance(store, SQLiteResultStore):
        store.execute(
            'UPDATE "%s" SET payload=? WHERE digest=?' % store._table(kind),
            ("{truncated", digest),
        )
    else:
        store.path_for(kind, digest).write_text("{truncated", encoding="utf-8")


def quarantine_evidence(store):
    """True if the backend holds quarantined-artifact evidence."""
    if isinstance(store, SQLiteResultStore):
        return store.execute("SELECT COUNT(*) FROM quarantine").fetchone()[0] > 0
    return bool(list(store.root.glob("*.corrupt")))


class TestStoreContract:
    def test_save_load_has_roundtrip(self, store):
        payload = {"b": [1, 2, 3], "a": {"nested": True}}
        assert not store.has("result", "d1")
        store.save_json("result", "d1", payload)
        assert store.has("result", "d1")
        assert store.load_json("result", "d1") == payload

    def test_missing_artifact_is_a_plain_miss(self, store):
        assert store.load_json("runs", "missing") is None
        assert not store.has("runs", "missing")
        assert not quarantine_evidence(store)

    def test_save_is_idempotent_overwrite(self, store):
        store.save_json("result", "d1", {"v": 1})
        store.save_json("result", "d1", {"v": 2})
        assert store.load_json("result", "d1") == {"v": 2}
        assert store.stats()["result"]["count"] == 1

    def test_runs_roundtrip_through_session(self, store, tmp_path):
        scenario = smoke_scenario()
        first = Session(store=store).run_metrics(scenario)
        digest = scenario.point_digest(1)
        loaded = store.load_runs(digest)
        assert loaded is not None
        assert [run.to_dict() for run in loaded] == [run.to_dict() for run in first]

    def test_corrupt_artifact_reads_as_miss_and_is_quarantined(self, store):
        store.save_json("runs", "d1", [{"ok": 1}])
        corrupt_artifact(store, "runs", "d1")
        assert store.load_json("runs", "d1") is None
        assert quarantine_evidence(store)
        # The damaged row/file no longer shadows new writes.
        store.save_json("runs", "d1", [{"ok": 2}])
        assert store.load_json("runs", "d1") == [{"ok": 2}]

    def test_corrupt_artifact_recomputed_by_fresh_session(self, store):
        scenario = smoke_scenario()
        first = Session(store=store).run_metrics(scenario)
        digest = scenario.point_digest(1)
        corrupt_artifact(store, "runs", digest)
        second = Session(store=store).run_metrics(scenario)
        assert [run.to_dict() for run in first] == [run.to_dict() for run in second]
        assert store.load_runs(digest) is not None

    def test_prune_sweeps_quarantine(self, store):
        store.save_json("runs", "d1", [1])
        corrupt_artifact(store, "runs", "d1")
        store.load_json("runs", "d1")
        assert quarantine_evidence(store)
        store.prune()
        assert not quarantine_evidence(store)

    def test_prune_kind_drops_that_layer_only(self, store):
        store.save_json("runs", "d1", [1])
        store.save_json("result", "d2", {"v": 1})
        removed = store.prune(kind="runs")
        assert removed >= 1
        assert not store.has("runs", "d1")
        assert store.has("result", "d2")

    def test_prune_trace_kind_removes_trace_files(self, store):
        write_fake_trace(store, "d1", [{"header": 1}])
        store.save_json("result", "d2", {"v": 1})
        store.prune(kind="trace")
        assert not store.has_trace("d1")
        assert store.has("result", "d2")

    def test_clear_removes_everything(self, store):
        store.save_json("runs", "d1", [1])
        store.save_json("result", "d2", {"v": 1})
        write_fake_trace(store, "d3", [{"header": 1}])
        removed = store.clear()
        assert removed >= 3
        assert not store.has("runs", "d1")
        assert not store.has("result", "d2")
        assert not store.has_trace("d3")
        assert store.stats() == {}

    def test_stats_counts_and_bytes(self, store):
        store.save_json("runs", "d1", [1, 2])
        store.save_json("runs", "d2", [3])
        store.save_json("result", "d3", {"v": 1})
        write_fake_trace(store, "d4", [{"header": 1}])
        totals = store.stats()
        assert totals["runs"]["count"] == 2
        assert totals["result"]["count"] == 1
        assert totals["trace"]["count"] == 1
        for record in totals.values():
            assert record["bytes"] > 0

    def test_trace_check_and_quarantine(self, store):
        assert store.check_trace("missing") is False
        write_fake_trace(store, "good", [{"header": 1}, ["poll", 0, "p", 1]])
        assert store.check_trace("good") is True
        path = write_fake_trace(store, "torn", [{"header": 1}], complete=False)
        assert store.check_trace("torn") is False
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_iter_artifacts_yields_all_kinds(self, store):
        store.save_json("runs", "d1", [1])
        store.save_json("result", "d2", {"v": 2})
        found = {(kind, digest): payload for kind, digest, payload in store.iter_artifacts()}
        assert found == {("runs", "d1"): [1], ("result", "d2"): {"v": 2}}


class TestSQLiteSpecifics:
    def test_invalid_kind_rejected(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "s.db")
        with pytest.raises(ValueError):
            store.save_json("bad-kind; DROP", "d1", {})
        with pytest.raises(ValueError):
            store.path_for("", "d1")

    def test_two_connections_share_one_file(self, tmp_path):
        path = tmp_path / "shared.db"
        first = SQLiteResultStore(path)
        second = SQLiteResultStore(path)
        first.save_json("result", "d1", {"v": 1})
        assert second.load_json("result", "d1") == {"v": 1}
        second.save_json("result", "d2", {"v": 2})
        assert first.has("result", "d2")

    def test_record_mode_traces_live_beside_the_database(self, tmp_path):
        store = SQLiteResultStore(tmp_path / "s.db")
        scenario = smoke_scenario()
        Session(store=store, record=True).run_metrics(scenario)
        digest = scenario.point_digest(1)
        assert store.check_trace(digest)
        assert store.trace_path(digest).parent == tmp_path / "s.db.traces"


class TestOpenStore:
    def test_directory_reference(self, tmp_path):
        assert type(open_store(tmp_path / "plain")) is ResultStore

    @pytest.mark.parametrize("suffix", SQLITE_SUFFIXES)
    def test_sqlite_suffixes(self, tmp_path, suffix):
        store = open_store(tmp_path / ("results" + suffix))
        assert isinstance(store, SQLiteResultStore)

    def test_sqlite_prefix(self, tmp_path):
        store = open_store("sqlite:%s" % (tmp_path / "odd-name"))
        assert isinstance(store, SQLiteResultStore)

    def test_existing_file_sniffed_by_magic(self, tmp_path):
        # A SQLite database under an unconventional name still opens as one.
        path = tmp_path / "results.data"
        SQLiteResultStore(path).save_json("result", "d1", {"v": 1})
        store = open_store(path)
        assert isinstance(store, SQLiteResultStore)
        assert store.load_json("result", "d1") == {"v": 1}

    def test_passthrough_instance(self, tmp_path):
        original = ResultStore(tmp_path)
        assert open_store(original) is original

    def test_session_coerces_store_reference(self, tmp_path):
        session = Session(store=str(tmp_path / "auto.db"))
        assert isinstance(session.store, SQLiteResultStore)


class TestMigrate:
    def test_directory_to_sqlite_with_traces(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        scenario = smoke_scenario()
        Session(store=source, record=True).run_metrics(scenario)
        digest = scenario.point_digest(1)
        source.save_json("result", "r1", {"v": 1})
        dest = SQLiteResultStore(tmp_path / "dst.db")
        copied = migrate_store(source, dest)
        assert copied["runs"] == 1
        assert copied["result"] == 1
        assert copied["trace"] == 1
        assert dest.load_json("result", "r1") == {"v": 1}
        assert [r.to_dict() for r in dest.load_runs(digest)] == [
            r.to_dict() for r in source.load_runs(digest)
        ]
        assert dest.check_trace(digest)

    def test_sqlite_to_directory(self, tmp_path):
        source = SQLiteResultStore(tmp_path / "src.db")
        source.save_json("runs", "d1", [1, 2])
        dest = ResultStore(tmp_path / "dst")
        copied = migrate_store(source, dest)
        assert copied == {"runs": 1}
        assert dest.load_json("runs", "d1") == [1, 2]
