"""Tests for mid-run checkpoint capture, restore, fork, and persistence."""

import gzip
import pickle

import pytest

from repro import units
from repro.api import AdversarySpec, Scenario
from repro.api.session import build_point_world
from repro.replay import Checkpoint, CheckpointError, SignatureMismatch, metrics_digest
from repro.replay import checkpoint as checkpoint_module


def scenario_for(kind):
    """A smoke-scale point scenario: baseline, pipe-stoppage, or composed."""
    adversary = {
        "baseline": None,
        "pipe_stoppage": AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 20.0, "coverage": 1.0, "recuperation_days": 10.0},
        ),
        "composed": AdversarySpec(
            "composed",
            {
                "targeting": {"kind": "random_subset", "coverage": 0.5},
                "schedule": {
                    "kind": "on_off",
                    "attack_duration_days": 15.0,
                    "recuperation_days": 15.0,
                },
                "vectors": [{"kind": "pipe_stoppage"}],
            },
        ),
    }[kind]
    return Scenario(
        name="checkpoint test %s" % kind,
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=adversary,
        seeds=(1,),
    )


def run_digest(scenario, baseline):
    world = build_point_world(scenario, 1, baseline=baseline)
    return metrics_digest(world.run())


class TestCheckpointDeterminism:
    @pytest.mark.parametrize("kind", ["baseline", "composed"])
    def test_restored_run_matches_uninterrupted_digest(self, kind):
        scenario = scenario_for(kind)
        baseline = kind == "baseline"
        uninterrupted = run_digest(scenario, baseline)

        world = build_point_world(scenario, 1, baseline=baseline)
        world.run(until=units.months(2))
        restored = Checkpoint.capture(world).restore()
        assert metrics_digest(restored.run()) == uninterrupted

    def test_capture_leaves_the_original_world_able_to_continue(self):
        scenario = scenario_for("pipe_stoppage")
        uninterrupted = run_digest(scenario, False)
        world = build_point_world(scenario, 1)
        world.run(until=units.months(2))
        Checkpoint.capture(world)
        assert metrics_digest(world.run()) == uninterrupted

    def test_restore_twice_yields_independent_worlds(self):
        scenario = scenario_for("pipe_stoppage")
        world = build_point_world(scenario, 1)
        world.run(until=units.months(2))
        checkpoint = Checkpoint.capture(world)
        first = metrics_digest(checkpoint.restore().run())
        second = metrics_digest(checkpoint.restore().run())
        assert first == second

    def test_capture_refused_while_running(self):
        scenario = scenario_for("baseline")
        world = build_point_world(scenario, 1, baseline=True)
        world.start()
        failures = []

        def grab() -> None:
            try:
                Checkpoint.capture(world)
            except CheckpointError as exc:
                failures.append(exc)

        world.simulator.post_at(units.days(3), grab)
        world.run(until=units.days(5))
        assert len(failures) == 1


class TestFork:
    def test_fork_with_adversary_diverges_from_plain_restore(self):
        scenario = scenario_for("pipe_stoppage")
        world = build_point_world(scenario, 1, baseline=True)
        world.run(until=units.months(2))
        checkpoint = Checkpoint.capture(world)

        plain = metrics_digest(checkpoint.restore().run())
        forked_world = checkpoint.fork(
            adversary_spec=AdversarySpec(
                "pipe_stoppage",
                {"attack_duration_days": 30.0, "coverage": 1.0},
            )
        )
        forked = forked_world.run()
        assert forked_world.network.stats.messages_dropped_blocked > 0
        assert metrics_digest(forked) != plain

    def test_fork_accepts_plain_dict_specs(self):
        scenario = scenario_for("baseline")
        world = build_point_world(scenario, 1, baseline=True)
        world.run(until=units.months(1))
        checkpoint = Checkpoint.capture(world)
        forked = checkpoint.fork(
            adversary_spec={
                "kind": "pipe_stoppage",
                "params": {"attack_duration_days": 10.0, "coverage": 1.0},
            }
        )
        assert forked.adversary is not None

    def test_fork_refuses_attacked_prefixes(self):
        scenario = scenario_for("pipe_stoppage")
        world = build_point_world(scenario, 1)
        world.run(until=units.months(1))
        checkpoint = Checkpoint.capture(world)
        with pytest.raises(CheckpointError):
            checkpoint.fork(
                adversary_spec=AdversarySpec("pipe_stoppage", {"coverage": 1.0})
            )


class TestPersistence:
    def test_save_load_roundtrip_preserves_determinism(self, tmp_path):
        scenario = scenario_for("pipe_stoppage")
        uninterrupted = run_digest(scenario, False)
        world = build_point_world(scenario, 1)
        world.run(until=units.months(2))
        path = Checkpoint.capture(world).save(tmp_path / "mid.ckpt.gz")
        loaded = Checkpoint.load(path)
        assert metrics_digest(loaded.restore().run()) == uninterrupted

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bogus.ckpt.gz"
        with gzip.open(path, "wb") as stream:
            pickle.dump({"format": "not-a-checkpoint"}, stream)
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_load_rejects_kernel_version_drift(self, tmp_path, monkeypatch):
        scenario = scenario_for("baseline")
        world = build_point_world(scenario, 1, baseline=True)
        world.run(until=units.months(1))
        path = Checkpoint.capture(world).save(tmp_path / "mid.ckpt.gz")
        monkeypatch.setattr(checkpoint_module, "KERNEL_VERSION", -1)
        with pytest.raises(SignatureMismatch):
            Checkpoint.load(path)
