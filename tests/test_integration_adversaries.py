"""Integration tests for the three adversary classes against real worlds."""

import pytest

from repro import units
from repro.adversary.base import AttackSchedule
from repro.adversary.brute_force import DefectionPoint
from repro.adversary.targeting import victim_count
from repro.api.registry import DEFAULT_REGISTRY
from repro.config import smoke_config
from repro.experiments.world import build_world


def pipe_stoppage_factory(attack_duration_days, coverage, recuperation_days=30.0):
    return DEFAULT_REGISTRY.factory(
        "pipe_stoppage",
        attack_duration_days=attack_duration_days,
        coverage=coverage,
        recuperation_days=recuperation_days,
    )


def admission_flood_factory(
    attack_duration_days, coverage, invitations_per_victim_per_day=4.0
):
    return DEFAULT_REGISTRY.factory(
        "admission_flood",
        attack_duration_days=attack_duration_days,
        coverage=coverage,
        invitations_per_victim_per_day=invitations_per_victim_per_day,
    )


def brute_force_factory(defection, **params):
    return DEFAULT_REGISTRY.factory(
        "brute_force", defection=defection.value, **params
    )


def run_world(adversary_factory=None, seed=3, **sim_overrides):
    protocol, sim = smoke_config(seed=seed)
    sim = sim.with_overrides(**sim_overrides) if sim_overrides else sim
    world = build_world(protocol, sim, adversary_factory=adversary_factory)
    metrics = world.run()
    return world, metrics


class TestAttackSchedule:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=0.0, coverage=0.5)
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=1.0, coverage=0.0)
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=1.0, coverage=1.5)
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=1.0, coverage=0.5, recuperation=-1.0)

    def test_pick_victims_respects_coverage(self):
        import random

        schedule = AttackSchedule(attack_duration=units.DAY, coverage=0.5)
        population = ["p%d" % i for i in range(10)]
        victims = schedule.pick_victims(random.Random(1), population)
        assert len(victims) == 5
        assert set(victims) <= set(population)

    def test_pick_victims_targets_at_least_one_victim(self):
        """Pinned edge: an active attack never targets an empty victim set.

        ``coverage * len(population) < 0.5`` rounds to zero, but the
        documented behaviour is a floor of one victim — the paper's
        adversary does not mount an attack cycle against nobody (a zero
        coverage is rejected at construction instead).
        """
        import random

        schedule = AttackSchedule(attack_duration=units.DAY, coverage=0.04)
        population = ["p%d" % i for i in range(10)]  # 0.04 * 10 = 0.4 -> 0
        victims = schedule.pick_victims(random.Random(7), population)
        assert len(victims) == 1
        # The shared victim-count rule agrees with the schedule...
        assert victim_count(0.04, 10) == 1
        # ...clamps to the population...
        assert victim_count(1.0, 3) == 3
        # ...and rounds (not truncates) above the floor.
        assert victim_count(0.55, 10) == 6

    def test_pick_victims_matches_random_subset_targeting_draws(self):
        """The composed targeting policy replays the legacy sample path."""
        import random

        from repro.adversary.targeting import RandomSubsetTargeting

        schedule = AttackSchedule(attack_duration=units.DAY, coverage=0.3)
        policy = RandomSubsetTargeting(coverage=0.3)
        population = ["p%d" % i for i in range(17)]
        legacy = schedule.pick_victims(random.Random(42), population)
        composed = policy.pick(random.Random(42), population, 0)
        assert legacy == composed

    def test_cycle_length(self):
        schedule = AttackSchedule(
            attack_duration=10 * units.DAY, coverage=1.0, recuperation=30 * units.DAY
        )
        assert schedule.cycle_length == 40 * units.DAY


class TestPipeStoppage:
    def test_full_coverage_long_attack_suppresses_polls(self):
        baseline_world, baseline = run_world()
        factory = pipe_stoppage_factory(120.0, 1.0, recuperation_days=15.0)
        attacked_world, attacked = run_world(adversary_factory=factory)
        assert attacked.successful_polls < baseline.successful_polls
        assert attacked.failed_polls > baseline.failed_polls
        assert (
            attacked.mean_time_between_successful_polls
            > baseline.mean_time_between_successful_polls
        )

    def test_attack_is_effortless(self):
        factory = pipe_stoppage_factory(30.0, 0.5)
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.adversary_effort == 0.0

    def test_blackout_is_released_during_recuperation(self):
        factory = pipe_stoppage_factory(10.0, 1.0, recuperation_days=30.0)
        world, _ = run_world(adversary_factory=factory)
        # By the end of the run every blackout has been lifted or will be
        # lifted; the network must not stay permanently blocked.
        assert world.adversary.cycles_started >= 2
        assert len(world.network.blocked_identities()) <= world.sim_config.n_peers

    def test_partial_coverage_hurts_less_than_full(self):
        small_factory = pipe_stoppage_factory(120.0, 0.2, recuperation_days=15.0)
        full_factory = pipe_stoppage_factory(120.0, 1.0, recuperation_days=15.0)
        _, small = run_world(adversary_factory=small_factory)
        _, full = run_world(adversary_factory=full_factory)
        assert full.successful_polls < small.successful_polls


class TestAdmissionFlood:
    def test_flood_triggers_refractory_periods(self):
        factory = admission_flood_factory(200.0, 1.0, invitations_per_victim_per_day=8.0)
        world, _ = run_world(adversary_factory=factory)
        triggers = sum(
            peer.au_state(au.au_id).admission.refractory.triggers
            for peer in world.peers
            for au in world.aus
        )
        assert triggers > 0
        assert world.adversary.invitations_sent > 0

    def test_flood_barely_moves_poll_success(self):
        _, baseline = run_world()
        factory = admission_flood_factory(200.0, 1.0, invitations_per_victim_per_day=8.0)
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.successful_polls >= 0.8 * baseline.successful_polls

    def test_flood_is_effortless_for_the_adversary(self):
        factory = admission_flood_factory(60.0, 0.5)
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.adversary_effort == 0.0

    def test_garbage_invitations_never_earn_good_grades(self):
        factory = admission_flood_factory(200.0, 1.0, invitations_per_victim_per_day=8.0)
        world, _ = run_world(adversary_factory=factory)
        from repro.core.reputation import Grade

        adversary_ids = set(world.adversary.identities)
        now = world.simulator.now
        for peer in world.peers:
            for au in world.aus:
                known = peer.au_state(au.au_id).known_peers
                for identity in adversary_ids & set(known.known_peers()):
                    assert known.grade_of(identity, now) is Grade.DEBT


class TestBruteForce:
    def test_full_participation_raises_friction(self):
        _, baseline = run_world()
        factory = brute_force_factory(DefectionPoint.NONE, attempts_per_victim_au_per_day=5.0)
        world, attacked = run_world(adversary_factory=factory)
        baseline_friction = baseline.loyal_effort / max(1, baseline.successful_polls)
        attacked_friction = attacked.loyal_effort / max(1, attacked.successful_polls)
        assert attacked_friction > 1.2 * baseline_friction
        assert attacked.adversary_effort > 0
        assert world.adversary.votes_received > 0

    def test_intro_defection_never_sends_poll_proof(self):
        factory = brute_force_factory(DefectionPoint.INTRO)
        world, attacked = run_world(adversary_factory=factory)
        assert world.adversary.invitations_admitted > 0
        assert world.adversary.votes_received == 0

    def test_remaining_defection_receives_votes_but_wastes_them(self):
        factory = brute_force_factory(DefectionPoint.REMAINING)
        world, _ = run_world(adversary_factory=factory)
        assert world.adversary.votes_received > 0

    def test_attack_barely_moves_poll_success(self):
        _, baseline = run_world()
        factory = brute_force_factory(DefectionPoint.NONE)
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.successful_polls >= 0.75 * baseline.successful_polls

    def test_adversary_identities_start_in_debt(self):
        factory = brute_force_factory(DefectionPoint.INTRO)
        protocol, sim = smoke_config(seed=3)
        world = build_world(protocol, sim, adversary_factory=factory)
        world.start()
        from repro.core.reputation import Grade

        peer = world.peers[0]
        au = world.aus[0]
        known = peer.au_state(au.au_id).known_peers
        for identity in world.adversary.identities[:10]:
            assert known.grade_of(identity, world.simulator.now) is Grade.DEBT

    def test_oracle_skips_busy_victims(self):
        factory = brute_force_factory(DefectionPoint.INTRO)
        protocol, sim = smoke_config(seed=3)
        world = build_world(protocol, sim, adversary_factory=factory)
        # Saturate every victim's schedule so the oracle skips all attempts.
        for peer in world.peers:
            peer.schedule.reserve_at(0.0, sim.duration * 2, label="saturated")
        world.start()
        world.simulator.run(until=units.days(30))
        assert world.adversary.oracle_skips > 0
        assert world.adversary.invitations_sent == 0
