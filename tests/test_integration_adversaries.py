"""Integration tests for the three adversary classes against real worlds."""

import pytest

from repro import units
from repro.adversary.base import AttackSchedule
from repro.adversary.brute_force import DefectionPoint
from repro.config import smoke_config
from repro.experiments.admission_attack import make_admission_flood_factory
from repro.experiments.effortful import make_brute_force_factory
from repro.experiments.pipe_stoppage import make_pipe_stoppage_factory
from repro.experiments.world import build_world


def run_world(adversary_factory=None, seed=3, **sim_overrides):
    protocol, sim = smoke_config(seed=seed)
    sim = sim.with_overrides(**sim_overrides) if sim_overrides else sim
    world = build_world(protocol, sim, adversary_factory=adversary_factory)
    metrics = world.run()
    return world, metrics


class TestAttackSchedule:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=0.0, coverage=0.5)
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=1.0, coverage=0.0)
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=1.0, coverage=1.5)
        with pytest.raises(ValueError):
            AttackSchedule(attack_duration=1.0, coverage=0.5, recuperation=-1.0)

    def test_pick_victims_respects_coverage(self):
        import random

        schedule = AttackSchedule(attack_duration=units.DAY, coverage=0.5)
        population = ["p%d" % i for i in range(10)]
        victims = schedule.pick_victims(random.Random(1), population)
        assert len(victims) == 5
        assert set(victims) <= set(population)

    def test_cycle_length(self):
        schedule = AttackSchedule(
            attack_duration=10 * units.DAY, coverage=1.0, recuperation=30 * units.DAY
        )
        assert schedule.cycle_length == 40 * units.DAY


class TestPipeStoppage:
    def test_full_coverage_long_attack_suppresses_polls(self):
        baseline_world, baseline = run_world()
        factory = make_pipe_stoppage_factory(
            attack_duration=units.days(120), coverage=1.0, recuperation=units.days(15)
        )
        attacked_world, attacked = run_world(adversary_factory=factory)
        assert attacked.successful_polls < baseline.successful_polls
        assert attacked.failed_polls > baseline.failed_polls
        assert (
            attacked.mean_time_between_successful_polls
            > baseline.mean_time_between_successful_polls
        )

    def test_attack_is_effortless(self):
        factory = make_pipe_stoppage_factory(attack_duration=units.days(30), coverage=0.5)
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.adversary_effort == 0.0

    def test_blackout_is_released_during_recuperation(self):
        factory = make_pipe_stoppage_factory(
            attack_duration=units.days(10), coverage=1.0, recuperation=units.days(30)
        )
        world, _ = run_world(adversary_factory=factory)
        # By the end of the run every blackout has been lifted or will be
        # lifted; the network must not stay permanently blocked.
        assert world.adversary.cycles_started >= 2
        assert len(world.network.blocked_identities()) <= world.sim_config.n_peers

    def test_partial_coverage_hurts_less_than_full(self):
        small_factory = make_pipe_stoppage_factory(
            attack_duration=units.days(120), coverage=0.2, recuperation=units.days(15)
        )
        full_factory = make_pipe_stoppage_factory(
            attack_duration=units.days(120), coverage=1.0, recuperation=units.days(15)
        )
        _, small = run_world(adversary_factory=small_factory)
        _, full = run_world(adversary_factory=full_factory)
        assert full.successful_polls < small.successful_polls


class TestAdmissionFlood:
    def test_flood_triggers_refractory_periods(self):
        factory = make_admission_flood_factory(
            attack_duration=units.days(200),
            coverage=1.0,
            invitations_per_victim_per_day=8.0,
        )
        world, _ = run_world(adversary_factory=factory)
        triggers = sum(
            peer.au_state(au.au_id).admission.refractory.triggers
            for peer in world.peers
            for au in world.aus
        )
        assert triggers > 0
        assert world.adversary.invitations_sent > 0

    def test_flood_barely_moves_poll_success(self):
        _, baseline = run_world()
        factory = make_admission_flood_factory(
            attack_duration=units.days(200),
            coverage=1.0,
            invitations_per_victim_per_day=8.0,
        )
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.successful_polls >= 0.8 * baseline.successful_polls

    def test_flood_is_effortless_for_the_adversary(self):
        factory = make_admission_flood_factory(
            attack_duration=units.days(60), coverage=0.5
        )
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.adversary_effort == 0.0

    def test_garbage_invitations_never_earn_good_grades(self):
        factory = make_admission_flood_factory(
            attack_duration=units.days(200),
            coverage=1.0,
            invitations_per_victim_per_day=8.0,
        )
        world, _ = run_world(adversary_factory=factory)
        from repro.core.reputation import Grade

        adversary_ids = set(world.adversary.identities)
        now = world.simulator.now
        for peer in world.peers:
            for au in world.aus:
                known = peer.au_state(au.au_id).known_peers
                for identity in adversary_ids & set(known.known_peers()):
                    assert known.grade_of(identity, now) is Grade.DEBT


class TestBruteForce:
    def test_full_participation_raises_friction(self):
        _, baseline = run_world()
        factory = make_brute_force_factory(
            DefectionPoint.NONE, attempts_per_victim_au_per_day=5.0
        )
        world, attacked = run_world(adversary_factory=factory)
        baseline_friction = baseline.loyal_effort / max(1, baseline.successful_polls)
        attacked_friction = attacked.loyal_effort / max(1, attacked.successful_polls)
        assert attacked_friction > 1.2 * baseline_friction
        assert attacked.adversary_effort > 0
        assert world.adversary.votes_received > 0

    def test_intro_defection_never_sends_poll_proof(self):
        factory = make_brute_force_factory(DefectionPoint.INTRO)
        world, attacked = run_world(adversary_factory=factory)
        assert world.adversary.invitations_admitted > 0
        assert world.adversary.votes_received == 0

    def test_remaining_defection_receives_votes_but_wastes_them(self):
        factory = make_brute_force_factory(DefectionPoint.REMAINING)
        world, _ = run_world(adversary_factory=factory)
        assert world.adversary.votes_received > 0

    def test_attack_barely_moves_poll_success(self):
        _, baseline = run_world()
        factory = make_brute_force_factory(DefectionPoint.NONE)
        _, attacked = run_world(adversary_factory=factory)
        assert attacked.successful_polls >= 0.75 * baseline.successful_polls

    def test_adversary_identities_start_in_debt(self):
        factory = make_brute_force_factory(DefectionPoint.INTRO)
        protocol, sim = smoke_config(seed=3)
        world = build_world(protocol, sim, adversary_factory=factory)
        world.start()
        from repro.core.reputation import Grade

        peer = world.peers[0]
        au = world.aus[0]
        known = peer.au_state(au.au_id).known_peers
        for identity in world.adversary.identities[:10]:
            assert known.grade_of(identity, world.simulator.now) is Grade.DEBT

    def test_oracle_skips_busy_victims(self):
        factory = make_brute_force_factory(DefectionPoint.INTRO)
        protocol, sim = smoke_config(seed=3)
        world = build_world(protocol, sim, adversary_factory=factory)
        # Saturate every victim's schedule so the oracle skips all attempts.
        for peer in world.peers:
            peer.schedule.reserve_at(0.0, sim.duration * 2, label="saturated")
        world.start()
        world.simulator.run(until=units.days(30))
        assert world.adversary.oracle_skips > 0
        assert world.adversary.invitations_sent == 0
