"""Unit tests for FaultPlan parsing, validation, and digest discipline."""

import pytest

from repro.api import AdversarySpec, Scenario
from repro.faults import (
    ChurnSpec,
    CrashSpec,
    DegradedLinkWindow,
    FaultPlan,
    PartitionWindow,
    canonical_fault_plan,
)


class TestParsing:
    def test_empty_payload_is_a_noop_plan(self):
        plan = FaultPlan.from_dict({})
        assert not plan.is_active()
        assert plan.canonical() is None

    def test_none_payload_is_a_noop_plan(self):
        assert not FaultPlan.from_dict(None).is_active()

    def test_round_trip_preserves_every_section(self):
        payload = {
            "crash": {
                "rate_per_peer_per_year": 4.0,
                "mean_downtime_days": 2.0,
                "lose_replicas": True,
            },
            "churn": {"rate_per_peer_per_year": 1.0},
            "partitions": [{"start_day": 10.0, "duration_days": 5.0, "fraction": 0.3}],
            "degraded_links": [{"start_day": 0.0, "bandwidth_factor": 0.5}],
        }
        plan = FaultPlan.from_dict(payload)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.to_dict() == plan.to_dict()

    def test_unknown_section_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault section"):
            FaultPlan.from_dict({"quakes": {}})

    def test_unknown_field_is_rejected_with_the_section_named(self):
        with pytest.raises(ValueError, match="crash"):
            FaultPlan.from_dict({"crash": {"rate": 1.0}})

    def test_unknown_window_field_names_the_index(self):
        with pytest.raises(ValueError, match=r"partitions\[1\]"):
            FaultPlan.from_dict(
                {
                    "partitions": [
                        {"start_day": 0.0, "duration_days": 1.0},
                        {"start_day": 5.0, "length": 1.0},
                    ]
                }
            )

    def test_scalar_section_is_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            FaultPlan.from_dict({"crash": 3.0})

    def test_non_list_windows_are_rejected(self):
        with pytest.raises(ValueError, match="must be a list"):
            FaultPlan.from_dict({"partitions": {"start_day": 0.0}})


class TestValidation:
    @pytest.mark.parametrize(
        "section,payload",
        [
            ("crash", {"rate_per_peer_per_year": -1.0}),
            ("crash", {"mean_downtime_days": 0.0}),
            ("crash", {"coverage": 1.5}),
            ("crash", {"start_day": 1.0, "end_day": 1.0}),
            ("churn", {"rate_per_peer_per_year": -0.1}),
            ("churn", {"coverage": -0.1}),
        ],
    )
    def test_bad_spec_values_are_rejected(self, section, payload):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({section: payload})

    @pytest.mark.parametrize(
        "payload",
        [
            {"duration_days": 0.0},
            {"fraction": 1.5},
            {"start_day": -1.0},
        ],
    )
    def test_bad_partition_windows_are_rejected(self, payload):
        with pytest.raises(ValueError):
            PartitionWindow(**payload)

    @pytest.mark.parametrize(
        "payload",
        [
            {"bandwidth_factor": 0.0},
            {"latency_factor": -1.0},
            {"duration_days": 0.0},
        ],
    )
    def test_bad_degraded_link_windows_are_rejected(self, payload):
        with pytest.raises(ValueError):
            DegradedLinkWindow(**payload)

    def test_zero_rate_specs_are_inactive(self):
        assert not CrashSpec().active
        assert not ChurnSpec().active
        assert not CrashSpec(rate_per_peer_per_year=1.0, coverage=0.0).active
        assert CrashSpec(rate_per_peer_per_year=1.0).active


class TestCanonicalization:
    def test_omitted_and_spelled_out_defaults_hash_identically(self):
        terse = canonical_fault_plan({"churn": {"rate_per_peer_per_year": 4.0}})
        verbose = canonical_fault_plan(
            {
                "churn": {
                    "rate_per_peer_per_year": 4.0,
                    "mean_downtime_days": 30.0,
                    "coverage": 1.0,
                    "start_day": 0.0,
                    "end_day": None,
                }
            }
        )
        assert terse == verbose

    def test_noop_plan_canonicalizes_to_none(self):
        assert canonical_fault_plan(None) is None
        assert canonical_fault_plan({}) is None
        assert canonical_fault_plan({"crash": {"rate_per_peer_per_year": 0.0}}) is None


ADVERSARY = AdversarySpec(
    "pipe_stoppage",
    {"attack_duration_days": 45.0, "coverage": 1.0, "recuperation_days": 15.0},
)


def scenario(**overrides):
    fields = dict(name="faulted", base="smoke", adversary=ADVERSARY, seeds=(1,))
    fields.update(overrides)
    return Scenario(**fields)


class TestScenarioIntegration:
    def test_invalid_faults_fail_at_scenario_construction(self):
        with pytest.raises(ValueError):
            scenario(faults={"quakes": {}})

    def test_noop_plan_digests_like_no_plan(self):
        bare = scenario()
        noop = scenario(faults={"crash": {"rate_per_peer_per_year": 0.0}})
        assert noop.digest == bare.digest
        assert noop.point_digest(1) == bare.point_digest(1)
        assert noop.point_digest(1, baseline=True) == bare.point_digest(1, baseline=True)

    def test_active_plan_changes_every_digest(self):
        bare = scenario()
        faulted = scenario(faults={"churn": {"rate_per_peer_per_year": 4.0}})
        assert faulted.digest != bare.digest
        assert faulted.point_digest(1) != bare.point_digest(1)
        # Faults are environment, not adversary: the baseline runs them too,
        # so its digest must move with the plan.
        assert faulted.point_digest(1, baseline=True) != bare.point_digest(
            1, baseline=True
        )

    def test_faults_survive_scenario_json_round_trip(self):
        faulted = scenario(
            faults={"partitions": [{"start_day": 10.0, "duration_days": 2.0}]}
        )
        again = Scenario.from_json(faulted.to_json())
        assert again.faults == faulted.faults
        assert again.digest == faulted.digest

    def test_faults_sweep_scope_expands_per_point(self):
        swept = scenario(
            faults={"churn": {"rate_per_peer_per_year": 4.0}},
            sweep={"faults.churn.rate_per_peer_per_year": [4.0, 12.0]},
        )
        points = swept.expand()
        assert [p.faults["churn"]["rate_per_peer_per_year"] for p in points] == [
            4.0,
            12.0,
        ]
        assert len({p.digest for p in points}) == 2
