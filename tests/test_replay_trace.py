"""Tests for trace capture, verified replay, bisection, and trace storage."""

import gzip
import json

import pytest

from repro import units
from repro.api import AdversarySpec, ResultStore, Scenario, Session
from repro.replay import (
    ReplayDivergence,
    ReplayError,
    ReplaySignature,
    SignatureMismatch,
    TraceReader,
    TraceWriter,
    filter_records,
    first_divergence,
    iter_records,
    metrics_digest,
    record_run,
    replay_trace,
)
from repro.api.session import execute_point


def smoke_scenario(**overrides):
    fields = dict(
        name="replay test",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 20.0, "coverage": 1.0, "recuperation_days": 10.0},
        ),
        seeds=(1,),
    )
    fields.update(overrides)
    return Scenario(**fields)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded run shared by the read-only tests in this module."""
    scenario = smoke_scenario()
    path = tmp_path_factory.mktemp("traces") / "run.jsonl.gz"
    metrics = record_run(scenario, 1, path)
    return scenario, path, metrics


def rewrite_trace(src, dst, mutate_header=None, mutate_records=None):
    """Rewrite a trace line-by-line (one record per line, chunks expanded),
    optionally mutating the header dict or the record list."""
    with TraceReader(src) as reader:
        header = json.loads(json.dumps(reader.header))
        records = [list(record) for record in reader.records()]
        footer = reader.read_footer()
    if mutate_header is not None:
        mutate_header(header)
    if mutate_records is not None:
        mutate_records(records)
    with gzip.open(dst, "wb", compresslevel=1) as stream:
        stream.write(json.dumps(header, separators=(",", ":")).encode() + b"\n")
        for record in records + [footer]:
            stream.write(json.dumps(record, separators=(",", ":")).encode() + b"\n")
    return dst


class TestRecordFidelity:
    def test_record_on_metrics_match_record_off(self, recorded):
        scenario, _, metrics = recorded
        off = execute_point(scenario, 1)
        assert metrics_digest(metrics) == metrics_digest(off)

    def test_trace_is_self_contained(self, recorded):
        scenario, path, _ = recorded
        with TraceReader(path) as reader:
            assert reader.seed == 1
            assert reader.baseline is False
            assert Scenario.from_dict(reader.scenario_dict).digest == scenario.digest
            assert reader.signature == ReplaySignature.for_point(scenario, 1, False)

    def test_trace_contains_expected_record_kinds(self, recorded):
        _, path, _ = recorded
        kinds = {record[0] for record in iter_records(path)}
        # A pipe-stoppage run must at least send messages, conclude polls,
        # and open adversary windows.
        assert {"send", "poll", "win"} <= kinds

    def test_records_are_time_ordered_per_kind_stream(self, recorded):
        _, path, _ = recorded
        times = [record[1] for record in iter_records(path)]
        assert times, "trace has no records"
        assert all(isinstance(t, (int, float)) for t in times)


class TestReplay:
    def test_replay_reproduces_digest_exactly(self, recorded):
        _, path, metrics = recorded
        report = replay_trace(path)
        assert report.metrics_digest == metrics_digest(metrics)
        assert report.records_checked == sum(1 for _ in iter_records(path))
        assert report.records_checked > 0

    def test_replay_diverges_on_tampered_record(self, recorded, tmp_path):
        _, path, _ = recorded

        def tamper(records):
            for record in records:
                if record[0] == "send":
                    record[5] += 1  # size_bytes off by one
                    return
            pytest.fail("no send record to tamper with")

        bad = rewrite_trace(path, tmp_path / "tampered.jsonl.gz", mutate_records=tamper)
        with pytest.raises(ReplayDivergence):
            replay_trace(bad)

    def test_replay_diverges_on_extra_recorded_record(self, recorded, tmp_path):
        _, path, _ = recorded
        bad = rewrite_trace(
            path,
            tmp_path / "extra.jsonl.gz",
            mutate_records=lambda records: records.append(
                ["dmg", 1.0, "peer-00", "au-0", 0]
            ),
        )
        with pytest.raises(ReplayDivergence):
            replay_trace(bad)

    def test_replay_rejects_kernel_version_drift(self, recorded, tmp_path):
        _, path, _ = recorded

        def bump(header):
            header["signature"]["kernel_version"] += 1

        bad = rewrite_trace(path, tmp_path / "kernel.jsonl.gz", mutate_header=bump)
        with pytest.raises(SignatureMismatch):
            replay_trace(bad)

    def test_replay_rejects_scenario_drift(self, recorded, tmp_path):
        # The embedded scenario changed but the stamped digests did not:
        # the signature check must refuse before simulating anything.
        def drift(header):
            header["scenario"]["sim"]["duration"] = units.months(3)

        _, path, _ = recorded
        bad = rewrite_trace(path, tmp_path / "drift.jsonl.gz", mutate_header=drift)
        with pytest.raises(SignatureMismatch):
            replay_trace(bad)

    def test_replay_rejects_footer_digest_lie(self, recorded, tmp_path):
        _, path, _ = recorded
        src_footer = TraceReader(path).read_footer()

        def lie(header):
            pass

        bad = tmp_path / "footer.jsonl.gz"
        with TraceReader(path) as reader:
            header = reader.header
            records = [list(r) for r in reader.records()]
            footer = reader.read_footer()
        footer = ["end", footer[1], footer[2], "0" * 64]
        with gzip.open(bad, "wb") as stream:
            stream.write(json.dumps(header, separators=(",", ":")).encode() + b"\n")
            for record in records + [footer]:
                stream.write(json.dumps(record, separators=(",", ":")).encode() + b"\n")
        with pytest.raises(ReplayError):
            replay_trace(bad)
        assert src_footer[3] != "0" * 64


class TestWriterLifecycle:
    def _writer(self, tmp_path, name="trace.jsonl.gz"):
        scenario = smoke_scenario()
        signature = ReplaySignature.for_point(scenario, 1, False)
        path = tmp_path / name
        return path, TraceWriter(path, signature, scenario.to_dict(), 1, False)

    def test_finalize_is_atomic(self, tmp_path):
        path, writer = self._writer(tmp_path)
        writer.write(["dmg", 1.0, "peer-00", "au-0", 0])
        assert not path.exists()
        assert path.with_name(path.name + ".tmp").exists()
        writer.close(2.0, 10, "d" * 64)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
        assert writer.records_written == 1

    def test_abort_discards_partial_trace(self, tmp_path):
        path, writer = self._writer(tmp_path)
        writer.write(["dmg", 1.0, "peer-00", "au-0", 0])
        writer.abort()
        assert not path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_double_close_refused(self, tmp_path):
        _, writer = self._writer(tmp_path)
        writer.close(1.0, 0, "d" * 64)
        with pytest.raises(RuntimeError):
            writer.close(1.0, 0, "d" * 64)

    def test_sink_survives_flushes(self, tmp_path):
        # ``sink`` is a bound append on a buffer cleared in place; records
        # written through it after a flush must still land in the trace.
        path, writer = self._writer(tmp_path)
        writer.sink(["dmg", 1.0, "peer-00", "au-0", 0])
        writer.maybe_flush()  # below the chunk size: no-op
        writer._flush()  # force the in-place clear
        writer.sink(["dmg", 2.0, "peer-00", "au-0", 1])
        writer.close(3.0, 2, "d" * 64)
        assert [record[4] for record in iter_records(path)] == [0, 1]

    def test_reader_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bogus.jsonl.gz"
        with gzip.open(path, "wb") as stream:
            stream.write(b'{"format": "something-else"}\n')
        with pytest.raises(SignatureMismatch):
            TraceReader(path)


class TestFilterRecords:
    RECORDS = [
        ["send", 0.5, "peer-00", "peer-01", "Vote", 100],
        ["adm", 1.5, "peer-01", "peer-00", "admitted"],
        ["poll", 2.5, "peer-00", "au-0", "scheduled", 1, 0, 5, 5, 0, 0],
        ["dmg", 3.5, "peer-02", "au-0", 7],
    ]

    def test_filter_by_kind(self):
        assert [r[0] for r in filter_records(self.RECORDS, kinds=["send", "dmg"])] == [
            "send",
            "dmg",
        ]

    def test_filter_by_time_window(self):
        out = list(filter_records(self.RECORDS, start=1.0, until=3.0))
        assert [r[0] for r in out] == ["adm", "poll"]

    def test_filter_by_peer_matches_any_id_field(self):
        out = list(filter_records(self.RECORDS, peer="peer-00"))
        assert [r[0] for r in out] == ["send", "adm", "poll"]

    def test_filters_compose(self):
        out = list(filter_records(self.RECORDS, kinds=["send"], peer="peer-02"))
        assert out == []


class TestBisect:
    def test_identical_traces_have_no_divergence(self, recorded, tmp_path):
        scenario, path, _ = recorded
        other = tmp_path / "again.jsonl.gz"
        record_run(scenario, 1, other)
        assert first_divergence(path, other) is None

    def test_divergent_record_is_located(self, recorded, tmp_path):
        _, path, _ = recorded

        def tamper(records):
            records[7][1] += 0.125

        bad = rewrite_trace(path, tmp_path / "mut.jsonl.gz", mutate_records=tamper)
        divergence = first_divergence(path, bad, context=3)
        assert divergence is not None
        assert divergence.index == 7
        assert divergence.record_a[1] != divergence.record_b[1]
        assert len(divergence.context) <= 3
        assert "record 7" in divergence.describe()

    def test_header_mismatch_reports_index_minus_one(self, recorded, tmp_path):
        _, path, _ = recorded
        other = tmp_path / "other.jsonl.gz"
        record_run(smoke_scenario(seeds=(2,)), 2, other)
        divergence = first_divergence(path, other)
        assert divergence is not None
        assert divergence.index == -1


class TestStoreTraces:
    def test_session_record_writes_traces_for_computed_runs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        session = Session(store=store, record=True)
        scenario = smoke_scenario()
        session.run(scenario)
        # attacked + baseline, one seed each.
        traces = store.trace_paths()
        assert len(traces) == 2
        for trace in traces:
            report = replay_trace(trace)
            assert report.records_checked > 0

    def test_cached_runs_are_not_rerecorded(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = smoke_scenario()
        Session(store=store).run(scenario)  # populate the cache, no traces
        assert store.trace_paths() == []
        Session(store=store, record=True).run(scenario)
        # Everything was served from the store: still no traces.
        assert store.trace_paths() == []

    def test_record_without_store_is_refused(self):
        with pytest.raises(ValueError):
            Session(record=True).run(smoke_scenario())

    def test_artifacts_include_traces(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        Session(store=store, record=True).run(smoke_scenario())
        artifacts = store.artifacts()
        assert set(store.trace_paths()) <= set(artifacts)

    def test_prune_trace_kind_sweeps_traces_and_orphans(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        Session(store=store, record=True).run(smoke_scenario())
        orphan = store.root / "trace-deadbeef.jsonl.gz.tmp"
        orphan.write_bytes(b"partial")
        removed = store.prune(kind="trace")
        assert store.trace_paths() == []
        assert not orphan.exists()
        assert removed >= 3  # two traces + the orphaned partial
        # JSON artifacts survive a trace-only prune.
        assert list(store.root.glob("*-*.json"))

    def test_prune_other_kinds_leave_traces(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        Session(store=store, record=True).run(smoke_scenario())
        traces = store.trace_paths()
        store.prune(kind="result")
        assert store.trace_paths() == traces
