"""Tests for the typed observation stream and the queryable ResultSet."""

import pytest

from repro import units
from repro.api import (
    AdversarySpec,
    Campaign,
    CampaignRunner,
    Scenario,
    Session,
    observe,
)
from repro.api.observations import OBSERVATION_KINDS, RunObservations
from repro.metrics.report import RunMetrics


def make_metrics(**overrides):
    fields = dict(
        access_failure_probability=0.02,
        mean_time_between_successful_polls=units.days(30),
        successful_polls=10,
        failed_polls=2,
        inconclusive_polls=1,
        loyal_effort=500.0,
        adversary_effort=50.0,
        observation_window=units.months(6),
        extras={
            "alarms": 1.0,
            "invitations_sent": 40.0,
            "invitations_accepted": 30.0,
            "invitations_refused": 8.0,
            "max_damage_fraction": 0.3,
            "storage_failures": 4.0,
            "repairs_applied": 3.0,
            "events_processed": 12345.0,
        },
    )
    fields.update(overrides)
    return RunMetrics(**fields)


class TestTypedObservations:
    def test_projection_matches_the_metrics_fields(self):
        run = make_metrics()
        obs = observe(run)
        assert obs.polls.successful == 10
        assert obs.polls.failed == 2
        assert obs.polls.inconclusive == 1
        assert obs.polls.alarms == 1.0
        assert obs.polls.total == 13
        assert obs.admission.invitations_sent == 40.0
        assert obs.admission.invitations_refused == 8.0
        assert obs.effort.loyal == 500.0
        assert obs.effort.adversary == 50.0
        assert obs.effort.per_successful_poll == run.effort_per_successful_poll
        assert obs.damage.access_failure_probability == 0.02
        assert obs.damage.max_damage_fraction == 0.3
        assert obs.observation_window == run.observation_window
        # Untyped leftovers stay reachable (and read-only).
        assert obs.extras["events_processed"] == 12345.0
        with pytest.raises(TypeError):
            obs.extras["events_processed"] = 0.0

    def test_derived_ratios_match_the_legacy_arithmetic(self):
        obs = observe(make_metrics())
        assert obs.polls.success_rate == 10 / 13
        assert obs.admission.refusal_rate == 8.0 / 40.0
        # Degenerate runs divide by the legacy floor, not by zero.
        empty = observe(
            make_metrics(
                successful_polls=0,
                failed_polls=0,
                inconclusive_polls=0,
                extras={},
            )
        )
        assert empty.polls.success_rate == 0.0
        assert empty.admission.refusal_rate == 0.0

    def test_run_metrics_observations_method(self):
        run = make_metrics()
        obs = run.observations()
        assert isinstance(obs, RunObservations)
        assert obs == observe(run)

    def test_get_and_as_row(self):
        obs = observe(make_metrics())
        assert obs.get("polls") is obs.polls
        with pytest.raises(KeyError):
            obs.get("bogus")
        row = obs.as_row()
        assert row["polls.successful"] == 10
        assert row["damage.repairs_applied"] == 3.0
        assert set(key.split(".")[0] for key in row) == set(OBSERVATION_KINDS)


@pytest.fixture(scope="module")
def attack_results():
    scenario = Scenario(
        name="resultset test",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 45.0, "coverage": 1.0, "recuperation_days": 15.0},
        ),
        seeds=(1, 2),
    )
    campaign = Campaign.from_grid(
        "resultset", scenario, {"adversary.coverage": [0.4, 1.0]}
    )
    return CampaignRunner(Session()).run(campaign)


class TestResultSet:
    def test_filter_by_parameter_value(self, attack_results):
        subset = attack_results.filter(coverage=1.0)
        assert len(subset) == 1
        assert subset[0].parameters["coverage"] == 1.0
        assert len(attack_results.filter(coverage=99.0)) == 0

    def test_filter_by_predicate(self, attack_results):
        subset = attack_results.filter(
            lambda point: point.assessment.delay_ratio >= 1.0
        )
        assert len(subset) == len(attack_results)

    def test_group_by_parameter(self, attack_results):
        groups = attack_results.group_by("coverage")
        assert list(groups) == [0.4, 1.0]
        assert all(len(group) == 1 for group in groups.values())

    def test_dotted_column_resolution(self, attack_results):
        point = attack_results[0]
        assert attack_results.value(point, "coverage") == 0.4
        assert attack_results.value(point, "params.coverage") == 0.4
        assert (
            attack_results.value(point, "assessment.delay_ratio")
            == point.assessment.delay_ratio
        )
        assert (
            attack_results.value(point, "attacked.polls.successful")
            == point.attacked.polls.successful
        )
        assert (
            attack_results.value(point, "baseline.damage.access_failure_probability")
            == point.baseline.damage.access_failure_probability
        )
        assert attack_results.value(point, "attacked.extras.events_processed") > 0
        with pytest.raises(KeyError):
            attack_results.value(point, "attacked.bogus.field")

    def test_rows_with_explicit_columns(self, attack_results):
        rows = attack_results.rows("coverage", "assessment.delay_ratio")
        assert [row["coverage"] for row in rows] == [0.4, 1.0]
        assert all(row["assessment.delay_ratio"] >= 1.0 for row in rows)

    def test_default_rows_carry_parameters_and_metrics(self, attack_results):
        rows = attack_results.rows()
        assert rows[0]["coverage"] == 0.4
        for column in (
            "label",
            "access_failure_probability",
            "delay_ratio",
            "coefficient_of_friction",
            "cost_ratio",
        ):
            assert column in rows[0]

    def test_aggregate_and_values(self, attack_results):
        ratios = attack_results.values("assessment.delay_ratio")
        assert attack_results.aggregate("assessment.delay_ratio") == pytest.approx(
            sum(ratios) / len(ratios)
        )
        assert attack_results.aggregate(
            "assessment.delay_ratio", reducer=max
        ) == max(ratios)

    def test_sort_by_reorders_points(self, attack_results):
        descending = attack_results.sort_by("coverage").points[::-1]
        assert [p.parameters["coverage"] for p in descending] == [1.0, 0.4]

    def test_observation_stream_tags_point_seed_and_role(self, attack_results):
        records = list(attack_results.observations(kinds=("polls",)))
        # 2 points x 2 seeds x 2 roles (attacked + distinct baseline).
        assert len(records) == 8
        assert {record.role for record in records} == {"attacked", "baseline"}
        assert {record.seed for record in records} == {1, 2}
        assert {record.point for record in records} == {0, 1}
        assert all(record.kind == "polls" for record in records)
        assert all(record.observation.total >= 0 for record in records)

    def test_observation_stream_full_kinds(self, attack_results):
        records = list(attack_results.observations())
        assert len(records) == 8 * len(OBSERVATION_KINDS)
        with pytest.raises(KeyError):
            next(attack_results.observations(kinds=("bogus",)))

    def test_observation_stream_skips_duplicate_baselines(self):
        scenario = Scenario(
            name="no adversary",
            base="smoke",
            sim={"duration": units.months(4)},
            seeds=(1,),
        )
        results = CampaignRunner(Session()).run(
            Campaign(name="baseline-only", scenario=scenario)
        )
        records = list(results.observations(kinds=("polls",)))
        assert [record.role for record in records] == ["attacked"]
