"""Unit tests for reference list and friends list maintenance."""

import random

import pytest

from repro.core.reference_list import ReferenceList


@pytest.fixture
def rng():
    return random.Random(42)


class TestBasicContainer:
    def test_add_and_contains(self):
        ref = ReferenceList(owner="me")
        assert ref.add("p1")
        assert "p1" in ref
        assert len(ref) == 1

    def test_add_self_is_ignored(self):
        ref = ReferenceList(owner="me")
        assert not ref.add("me")
        assert len(ref) == 0

    def test_add_duplicate_is_ignored(self):
        ref = ReferenceList(owner="me")
        ref.add("p1")
        assert not ref.add("p1")
        assert len(ref) == 1

    def test_remove(self):
        ref = ReferenceList(owner="me")
        ref.add("p1")
        assert ref.remove("p1")
        assert not ref.remove("p1")
        assert "p1" not in ref

    def test_extend_counts_added(self):
        ref = ReferenceList(owner="me")
        added = ref.extend(["p1", "p2", "p1", "me"])
        assert added == 2

    def test_friends_exclude_owner(self):
        ref = ReferenceList(owner="me", friends=["me", "f1", "f2"])
        assert ref.friends == ["f1", "f2"]

    def test_rejects_bad_target_size(self):
        with pytest.raises(ValueError):
            ReferenceList(owner="me", target_size=0)


class TestSampling:
    def test_sample_returns_distinct_members(self, rng):
        ref = ReferenceList(owner="me")
        ref.extend("p%d" % i for i in range(20))
        sample = ref.sample(rng, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert all(peer in ref for peer in sample)

    def test_sample_caps_at_population(self, rng):
        ref = ReferenceList(owner="me")
        ref.extend(["p1", "p2"])
        assert sorted(ref.sample(rng, 10)) == ["p1", "p2"]

    def test_sample_respects_exclusions(self, rng):
        ref = ReferenceList(owner="me")
        ref.extend(["p1", "p2", "p3"])
        sample = ref.sample(rng, 3, exclude=["p2"])
        assert "p2" not in sample

    def test_inner_circle_topped_up_with_friends(self, rng):
        ref = ReferenceList(owner="me", friends=["f1", "f2", "f3"])
        ref.extend(["p1"])
        circle = ref.sample_inner_circle(rng, 3)
        assert len(circle) == 3
        assert "p1" in circle
        assert len([p for p in circle if p.startswith("f")]) == 2

    def test_inner_circle_without_enough_candidates(self, rng):
        ref = ReferenceList(owner="me", friends=["f1"])
        circle = ref.sample_inner_circle(rng, 5)
        assert circle == ["f1"]

    def test_sample_friends(self, rng):
        ref = ReferenceList(owner="me", friends=["f1", "f2", "f3"])
        assert len(ref.sample_friends(rng, 2)) == 2
        assert sorted(ref.sample_friends(rng, 10)) == ["f1", "f2", "f3"]


class TestPostPollUpdate:
    def test_update_removes_used_voters_and_adds_outer(self, rng):
        ref = ReferenceList(owner="me", friends=["f1"])
        ref.extend(["v1", "v2", "v3", "keep"])
        ref.update_after_poll(
            rng,
            voters_used=["v1", "v2", "v3"],
            agreeing_outer_circle=["new1", "new2"],
            friend_bias_count=1,
        )
        assert "v1" not in ref and "v2" not in ref and "v3" not in ref
        assert "new1" in ref and "new2" in ref
        assert "keep" in ref
        assert "f1" in ref

    def test_update_trims_to_target_size(self, rng):
        ref = ReferenceList(owner="me", target_size=5)
        ref.extend("old%d" % i for i in range(5))
        ref.update_after_poll(
            rng,
            voters_used=[],
            agreeing_outer_circle=["new%d" % i for i in range(3)],
            friend_bias_count=0,
        )
        assert len(ref) == 5
        # The oldest entries are the ones trimmed.
        assert "old0" not in ref
        assert "new2" in ref

    def test_update_with_no_discovery_keeps_list(self, rng):
        ref = ReferenceList(owner="me")
        ref.extend(["a", "b"])
        ref.update_after_poll(rng, voters_used=[], agreeing_outer_circle=[], friend_bias_count=0)
        assert sorted(ref.entries()) == ["a", "b"]

    def test_churn_over_many_polls_keeps_list_bounded(self, rng):
        ref = ReferenceList(owner="me", friends=["f1", "f2"], target_size=20)
        ref.extend("p%d" % i for i in range(20))
        for round_index in range(50):
            circle = ref.sample(rng, 5)
            newcomers = ["n%d-%d" % (round_index, i) for i in range(3)]
            ref.update_after_poll(
                rng,
                voters_used=circle,
                agreeing_outer_circle=newcomers,
                friend_bias_count=1,
            )
            assert len(ref) <= 20
        assert len(ref) > 0
