"""ResultStore load-path hardening: quarantine of corrupt artifacts and
trace integrity checks."""

import gzip
import json

from repro import units
from repro.api import ResultStore, Scenario, Session


def smoke_scenario(**overrides):
    fields = dict(
        name="quarantine test",
        base="smoke",
        sim={"duration": units.months(3)},
        seeds=(1,),
    )
    fields.update(overrides)
    return Scenario(**fields)


def write_fake_trace(store, digest, lines, complete=True):
    path = store.trace_path(digest)
    with gzip.open(path, "wb") as stream:
        for line in lines:
            stream.write(json.dumps(line).encode() + b"\n")
        if complete:
            stream.write(b'["end", 0, 0, "digest"]\n')
    return path


class TestJsonQuarantine:
    def test_corrupt_json_reads_as_miss_and_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("runs", "deadbeef")
        path.write_text("{truncated", encoding="utf-8")
        assert store.load_json("runs", "deadbeef") is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_missing_artifact_is_a_plain_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_json("runs", "deadbeef") is None
        assert list(tmp_path.glob("*.corrupt")) == []

    def test_recompute_replaces_a_quarantined_artifact(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = smoke_scenario()
        session = Session(store=store)
        first = session.run_metrics(scenario)
        digest = scenario.point_digest(1)
        # Corrupt the persisted runs artifact, then hit it from a fresh
        # session (empty in-memory cache): the store quarantines and the
        # session recomputes.
        store.path_for("runs", digest).write_text("garbage", encoding="utf-8")
        second = Session(store=store).run_metrics(scenario)
        assert [run.to_dict() for run in first] == [run.to_dict() for run in second]
        assert store.load_runs(digest) is not None
        assert list(tmp_path.glob("*.corrupt"))

    def test_prune_sweeps_quarantined_files(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("runs", "deadbeef")
        path.write_text("{", encoding="utf-8")
        store.load_json("runs", "deadbeef")
        assert list(tmp_path.glob("*.corrupt"))
        store.prune()
        assert list(tmp_path.glob("*.corrupt")) == []


class TestTraceCheck:
    def test_missing_trace_is_false_without_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.check_trace("deadbeef") is False
        assert list(tmp_path.glob("*.corrupt")) == []

    def test_complete_trace_passes(self, tmp_path):
        store = ResultStore(tmp_path)
        write_fake_trace(store, "deadbeef", [{"header": 1}, ["poll", 0, "p", 1]])
        assert store.check_trace("deadbeef") is True

    def test_footerless_trace_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = write_fake_trace(
            store, "deadbeef", [{"header": 1}, ["poll", 0, "p", 1]], complete=False
        )
        assert store.check_trace("deadbeef") is False
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_truncated_gzip_stream_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = write_fake_trace(store, "deadbeef", [{"header": 1}])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.check_trace("deadbeef") is False
        assert not path.exists()

    def test_non_gzip_bytes_are_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.trace_path("deadbeef")
        path.write_bytes(b"this is not gzip")
        assert store.check_trace("deadbeef") is False
        assert not path.exists()


class TestRecordModeSelfHealing:
    def test_corrupt_trace_forces_recompute_and_regeneration(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = smoke_scenario()
        digest = scenario.point_digest(1)
        Session(store=store, record=True).run_metrics(scenario)
        assert store.check_trace(digest)
        # Truncate the trace, then rerun from a fresh record-mode session:
        # the cached run is recomputed and the trace regenerated.
        path = store.trace_path(digest)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        Session(store=store, record=True).run_metrics(scenario)
        assert store.check_trace(digest)

    def test_missing_trace_stays_a_cache_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = smoke_scenario()
        digest = scenario.point_digest(1)
        Session(store=store, record=True).run_metrics(scenario)
        store.trace_path(digest).unlink()
        # Cached runs are never re-recorded; the trace stays absent.
        Session(store=store, record=True).run_metrics(scenario)
        assert not store.has_trace(digest)
