"""Bus-attached execution: digest identity, world taps, and run control.

The load-bearing property: attaching an :class:`EventBus` (with a live
subscriber) to a session, or running under a :class:`RunControl`, must
leave every result bit-identical to an unobserved, uncontrolled run.
"""

import json
import threading
import time

import pytest

from repro import units
from repro.api import AdversarySpec, Scenario, Session
from repro.api.session import build_point_world
from repro.telemetry import EventBus, RunControl, RUN_CONTROLS, attach_world_bus
from repro.telemetry.stream import DENSE_FLUSH, _BusTracer


def smoke_scenario(**overrides):
    fields = dict(
        name="telemetry stream test",
        base="smoke",
        sim={"duration": units.months(2)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 20.0, "coverage": 1.0, "recuperation_days": 10.0},
        ),
        seeds=(1, 2),
    )
    fields.update(overrides)
    return Scenario(**fields)


def result_payload(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestDigestIdentity:
    def test_bus_attached_serial_run_is_bit_identical(self):
        scenario = smoke_scenario()
        plain = Session().run(scenario)
        bus = EventBus()
        subscriber = bus.subscribe()
        observed = Session(telemetry=bus).run(scenario)
        assert result_payload(plain) == result_payload(observed)
        # ...and the observation was real, not a disabled tap.
        topics = {event["topic"] for event in subscriber.drain()}
        assert "run_lifecycle" in topics
        assert topics & {"poll", "admission", "damage"}

    def test_bus_attached_pool_run_matches_serial(self):
        scenario = smoke_scenario()
        serial = Session().run(scenario)
        bus = EventBus()
        subscriber = bus.subscribe()
        pooled = Session(workers=2, telemetry=bus).run(scenario)
        assert result_payload(serial) == result_payload(pooled)
        # Pool runs publish lifecycle only (children cannot reach the
        # parent's bus); every per-seed run announces start and finish.
        events = subscriber.drain()
        states = [event["data"]["state"] for event in events]
        assert states.count("started") == len(scenario.seeds) * 2  # attacked + baseline
        assert states.count("finished") == len(scenario.seeds) * 2

    def test_controlled_world_run_is_bit_identical(self):
        scenario = smoke_scenario(seeds=(3,))
        free = build_point_world(scenario, 3).run()
        controlled = build_point_world(scenario, 3).run(control=RunControl(slice_events=97))
        assert free.to_dict() == controlled.to_dict()

    def test_world_taps_do_not_change_metrics(self):
        scenario = smoke_scenario(seeds=(4,))
        plain = build_point_world(scenario, 4).run()
        world = build_point_world(scenario, 4)
        bus = EventBus()
        subscriber = bus.subscribe()
        attach_world_bus(world, bus, run="test-run")
        observed = world.run()
        assert plain.to_dict() == observed.to_dict()
        events = subscriber.drain()
        assert events, "taps published nothing"
        assert all(event["run"] == "test-run" for event in events)

    def test_network_send_tap_stays_unattached(self):
        world = build_point_world(smoke_scenario(seeds=(5,)), 5)
        attach_world_bus(world, EventBus())
        assert getattr(world.network, "tracer", None) is None


class _StubSim:
    _now = 42.0


class TestDenseAggregation:
    """Admission/damage fold into summaries instead of per-record events."""

    def _tracer(self):
        bus = EventBus()
        subscription = bus.subscribe(topics=["admission", "damage"])
        tracer = _BusTracer(_StubSim(), bus, run="r1")
        return tracer, subscription

    def test_admission_summary_counts_and_window(self):
        tracer, subscription = self._tracer()
        tracer.admission(1.0, "v1", "p1", "admitted")
        tracer.admission(2.0, "v2", "p1", "dropped_refractory")
        tracer.admission(3.0, "v3", "p2", "admitted")
        assert subscription.pending() == 0  # nothing published until flush
        tracer.flush()
        (event,) = subscription.drain()
        kind, t_first, t_last, records, counts = event["data"]
        assert kind == "admsum"
        assert (t_first, t_last, records) == (1.0, 3.0, 3)
        assert counts == {"admitted": 2, "dropped_refractory": 1}
        assert event["run"] == "r1"

    def test_damage_summary_aggregates_cells(self):
        tracer, subscription = self._tracer()
        for _ in range(3):
            tracer.damage("peer-1", "au-1", 7)
        tracer.damage("peer-2", "au-1", 9)
        tracer.flush()
        (event,) = subscription.drain()
        kind, _, _, records, cells = event["data"]
        assert kind == "dmgsum"
        assert records == 4
        assert sorted(cells) == [("peer-1", "au-1", 3), ("peer-2", "au-1", 1)]

    def test_dense_flush_threshold_emits_mid_run(self):
        tracer, subscription = self._tracer()
        for index in range(DENSE_FLUSH + 1):
            tracer.admission(float(index), "v", "p", "admitted")
        events = subscription.drain()
        assert len(events) == 1  # the threshold flush; one record still pending
        assert events[0]["data"][3] == DENSE_FLUSH
        tracer.flush()
        (tail,) = subscription.drain()
        assert tail["data"][3] == 1
        tracer.flush()
        assert subscription.drain() == []  # empty aggregates publish nothing

    def test_sink_records_route_into_aggregates(self):
        tracer, subscription = self._tracer()
        tracer.sink(["adm", 5.0, "v", "p", "admitted"])
        tracer.sink(["dmg", 6.0, "peer-1", "au-1", 3])
        tracer.sink(["send", 7.0, "a", "b", "Poll", 100])  # unbridged: dropped
        tracer.flush()
        events = subscription.drain()
        assert sorted(event["data"][0] for event in events) == ["admsum", "dmgsum"]


class TestRunControl:
    def test_gate_grants_slices_while_live(self):
        control = RunControl(slice_events=123)
        assert control.gate() == 123
        assert not control.paused

    def test_pause_blocks_and_step_grants(self):
        control = RunControl()
        control.pause()
        grants = []

        def gated():
            grants.append(control.gate())

        thread = threading.Thread(target=gated)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "gate returned while paused"
        control.step(7)
        thread.join(timeout=2.0)
        assert grants == [7]
        control.resume()

    def test_resume_unblocks_and_clears_grants(self):
        control = RunControl(slice_events=50)
        control.pause()
        control.step(3)
        control.resume()
        assert control.gate() == 50  # stale step grant was cleared
        assert control.stepped == 3  # but stays counted

    def test_paused_world_makes_no_progress_until_stepped(self):
        scenario = smoke_scenario(seeds=(6,))
        world = build_point_world(scenario, 6)
        control = RunControl(slice_events=256)
        control.pause()
        done = threading.Event()

        def run():
            world.run(control=control)
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        time.sleep(0.3)
        paused_at = world.simulator.events_processed
        assert not done.is_set()
        control.step(10)
        deadline = time.time() + 2.0
        while world.simulator.events_processed < paused_at + 10 and time.time() < deadline:
            time.sleep(0.01)
        assert world.simulator.events_processed >= paused_at + 10
        assert not done.is_set()
        control.resume()
        assert done.wait(timeout=30.0)

    def test_session_registers_run_controls_while_executing(self):
        seen = {}
        real_gate = RunControl.gate
        control = RunControl()

        def spying_gate(self):
            seen.update(RUN_CONTROLS.active())
            return real_gate(self)

        scenario = smoke_scenario(seeds=(7,), adversary=None)
        try:
            RunControl.gate = spying_gate
            Session(control=control).run(scenario)
        finally:
            RunControl.gate = real_gate
        assert control in seen.values()
        assert not RUN_CONTROLS.active()  # unregistered after the run
