"""Campaign-level fault handling: failed points in the manifest, resume
re-leasing, Ctrl-C manifest flushing, and fault-plan axes."""

import pytest

from repro import units
from repro.api import (
    AdversarySpec,
    Campaign,
    CampaignRunner,
    ResultStore,
    Scenario,
    Session,
)
from repro.api import session as session_module


def base_scenario(**overrides):
    fields = dict(
        name="campaign fault test",
        base="smoke",
        sim={"duration": units.months(3)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 30.0, "coverage": 1.0, "recuperation_days": 10.0},
        ),
        seeds=(1,),
    )
    fields.update(overrides)
    return Scenario(**fields)


def two_point_campaign():
    return Campaign.from_grid(
        "fault grid", base_scenario(), {"adversary.coverage": [0.4, 1.0]}
    )


def manifest(store, campaign):
    return store.load_json("campaign", campaign.digest)


class SelectiveFailure:
    """execute_point stand-in failing runs whose resolved value matches."""

    def __init__(self, poisoned_coverage):
        self.poisoned_coverage = poisoned_coverage
        self.real = session_module.execute_point

    def __call__(self, scenario, seed, baseline=False, registry=None, trace_path=None):
        adversary = scenario.adversary
        if (
            not baseline
            and adversary is not None
            and adversary.params.get("coverage") == self.poisoned_coverage
        ):
            raise RuntimeError("poisoned point")
        return self.real(
            scenario, seed, baseline=baseline, registry=registry, trace_path=trace_path
        )


class TestFailedPoints:
    def test_failed_point_is_marked_and_the_rest_complete(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            session_module, "execute_point", SelectiveFailure(1.0)
        )
        store = ResultStore(tmp_path)
        campaign = two_point_campaign()
        runner = CampaignRunner(
            Session(store=store, retries=0, retry_backoff=0.0), store=store
        )
        results = runner.run(campaign)
        assert len(results) == 1
        payload = manifest(store, campaign)
        states = {entry["index"]: entry["state"] for entry in payload["points"]}
        assert states[0] == "complete"
        assert states[1] == "failed"
        failed_entry = payload["points"][1]
        assert "poisoned point" in failed_entry["error"]
        assert failed_entry["complete"] is False

    def test_resume_releases_failed_points(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        campaign = two_point_campaign()
        with monkeypatch.context() as patch:
            patch.setattr(session_module, "execute_point", SelectiveFailure(1.0))
            CampaignRunner(
                Session(store=store, retries=0, retry_backoff=0.0), store=store
            ).run(campaign)
        # The transient cause is gone; a fresh runner must re-lease exactly
        # the failed point and finish the campaign.
        results = CampaignRunner(Session(store=store), store=store).run(campaign)
        assert len(results) == len(campaign)
        payload = manifest(store, campaign)
        assert all(entry["state"] == "complete" for entry in payload["points"])

    def test_failure_does_not_abort_later_chunks(self, tmp_path, monkeypatch):
        # workers=1 -> chunk size 1: the poisoned first point must not stop
        # the second chunk from running.
        monkeypatch.setattr(
            session_module, "execute_point", SelectiveFailure(0.4)
        )
        store = ResultStore(tmp_path)
        campaign = two_point_campaign()
        results = CampaignRunner(
            Session(store=store, retries=0, retry_backoff=0.0), store=store
        ).run(campaign)
        assert len(results) == 1
        states = {
            entry["index"]: entry["state"]
            for entry in manifest(store, campaign)["points"]
        }
        assert states == {0: "failed", 1: "complete"}


class TestKeyboardInterrupt:
    def test_interrupt_flushes_the_manifest_before_propagating(
        self, tmp_path, monkeypatch
    ):
        real = session_module.execute_point
        seen = []

        def interrupt_second_point(
            scenario, seed, baseline=False, registry=None, trace_path=None
        ):
            coverage = (scenario.adversary or AdversarySpec("pipe_stoppage", {})).params.get(
                "coverage"
            )
            if not baseline and coverage == 1.0:
                raise KeyboardInterrupt()
            seen.append(coverage)
            return real(
                scenario,
                seed,
                baseline=baseline,
                registry=registry,
                trace_path=trace_path,
            )

        monkeypatch.setattr(session_module, "execute_point", interrupt_second_point)
        store = ResultStore(tmp_path)
        campaign = two_point_campaign()
        runner = CampaignRunner(Session(store=store), store=store)
        with pytest.raises(KeyboardInterrupt):
            runner.run(campaign)
        payload = manifest(store, campaign)
        assert payload is not None
        states = {entry["index"]: entry["state"] for entry in payload["points"]}
        assert states[0] == "complete"
        assert states[1] == "pending"

    def test_interrupted_campaign_resumes_like_max_points(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        campaign = two_point_campaign()
        with monkeypatch.context() as patch:
            real = session_module.execute_point

            def interrupt_second_point(
                scenario, seed, baseline=False, registry=None, trace_path=None
            ):
                if (
                    not baseline
                    and scenario.adversary is not None
                    and scenario.adversary.params.get("coverage") == 1.0
                ):
                    raise KeyboardInterrupt()
                return real(
                    scenario,
                    seed,
                    baseline=baseline,
                    registry=registry,
                    trace_path=trace_path,
                )

            patch.setattr(session_module, "execute_point", interrupt_second_point)
            with pytest.raises(KeyboardInterrupt):
                CampaignRunner(Session(store=store), store=store).run(campaign)
        resumed = CampaignRunner(Session(store=store), store=store).resume(campaign)
        assert len(resumed) == len(campaign)


class TestFaultAxes:
    def test_fault_plan_axis_expands_and_digests_distinctly(self):
        scenario = base_scenario(
            adversary=None,
            faults={"churn": {"rate_per_peer_per_year": 4.0}},
        )
        campaign = Campaign.from_grid(
            "churn grid",
            scenario,
            {"faults.churn.rate_per_peer_per_year": [4.0, 12.0]},
        )
        points = campaign.expand()
        assert [point.parameters for point in points] == [
            {"churn.rate_per_peer_per_year": 4.0},
            {"churn.rate_per_peer_per_year": 12.0},
        ]
        assert len({point.digest for point in points}) == 2

    def test_faulted_campaign_runs_serial_equals_parallel(self, tmp_path):
        scenario = base_scenario(
            adversary=None,
            faults={"churn": {"rate_per_peer_per_year": 8.0, "mean_downtime_days": 5.0}},
        )
        campaign = Campaign.from_grid(
            "churn grid",
            scenario,
            {"faults.churn.rate_per_peer_per_year": [4.0, 12.0]},
        )
        serial = CampaignRunner(Session(workers=1)).run(campaign)
        with Session(workers=2) as pooled_session:
            pooled = CampaignRunner(pooled_session).run(campaign)
        for left, right in zip(serial, pooled):
            assert left.digest == right.digest
            assert (
                left.result.assessment.to_dict() == right.result.assessment.to_dict()
            )
