"""Integration tests for Session execution and the persistent ResultStore.

The headline acceptance property lives here: a parallel (>= 2 workers)
multi-seed run produces bit-identical metrics to a serial run of the same
scenario.
"""

import pytest

from repro import units
from repro.api import (
    AdversarySpec,
    ResultStore,
    Scenario,
    Session,
)
from repro.api import session as session_module
from repro.metrics.report import RunMetrics


def smoke_scenario(**overrides):
    fields = dict(
        name="session test",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 45.0, "coverage": 1.0, "recuperation_days": 15.0},
        ),
        seeds=(1, 2),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestSerialExecution:
    def test_no_adversary_run_has_unit_ratios(self):
        result = Session().run(smoke_scenario(adversary=None, seeds=(1,)))
        assert result.assessment.delay_ratio == pytest.approx(1.0)
        assert result.assessment.coefficient_of_friction == pytest.approx(1.0)
        assert result.assessment.cost_ratio is None
        assert result.baseline_runs == result.attacked_runs

    def test_run_produces_one_metrics_per_seed(self):
        scenario = smoke_scenario()
        result = Session().run(scenario)
        assert len(result.attacked_runs) == len(scenario.seeds)
        assert len(result.baseline_runs) == len(scenario.seeds)
        assert result.scenario_digest == scenario.digest

    def test_run_rejects_sweep_scenarios(self):
        scenario = smoke_scenario(sweep={"adversary.coverage": [0.4, 1.0]})
        with pytest.raises(ValueError):
            Session().run(scenario)

    def test_in_memory_cache_reuses_runs(self, monkeypatch):
        session = Session()
        scenario = smoke_scenario(seeds=(1,))
        first = session.run(scenario)
        # Any further simulation would blow up; the cache must serve it all.
        monkeypatch.setattr(
            session_module,
            "execute_point",
            lambda *args, **kwargs: pytest.fail("cache miss"),
        )
        second = session.run(scenario)
        assert second.assessment == first.assessment

    def test_sweep_shares_baselines_across_points(self):
        # Two sweep points differing only in adversary params share one
        # baseline configuration: 2 attacked + 1 baseline = 3 simulations.
        calls = []
        original = session_module.execute_point

        def counting(scenario, seed, baseline=False, registry=None, **kwargs):
            calls.append(baseline)
            return original(
                scenario, seed, baseline=baseline, registry=registry, **kwargs
            )

        scenario = smoke_scenario(
            seeds=(1,),
            sweep={"adversary.attack_duration_days": [30.0, 60.0]},
        )
        session = Session()
        try:
            session_module.execute_point = counting
            # Session._compute calls the module function through the serial
            # path below (workers=1).
            results = session.sweep(scenario)
        finally:
            session_module.execute_point = original
        assert len(results) == 2
        assert calls.count(True) == 1
        assert calls.count(False) == 2


class TestParallelExecution:
    def test_parallel_is_bit_identical_to_serial(self):
        scenario = smoke_scenario()
        serial = Session(workers=1).run(scenario)
        parallel = Session(workers=2).run(scenario)
        assert parallel.attacked_runs == serial.attacked_runs
        assert parallel.baseline_runs == serial.baseline_runs
        assert parallel.assessment == serial.assessment

    def test_parallel_sweep_matches_serial_sweep(self):
        scenario = smoke_scenario(
            seeds=(1,),
            sweep={"adversary.attack_duration_days": [30.0, 60.0]},
        )
        serial = Session(workers=1).sweep(scenario)
        parallel = Session(workers=2).sweep(scenario)
        assert [r.assessment for r in parallel] == [r.assessment for r in serial]
        assert [r.parameters for r in parallel] == [r.parameters for r in serial]


class TestPoolReuse:
    def test_one_pool_is_reused_across_batches(self, monkeypatch):
        import concurrent.futures

        created = []
        real_executor = concurrent.futures.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                created.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", CountingExecutor
        )
        with Session(workers=2) as session:
            session.run(smoke_scenario(seeds=(1, 2)))
            # A second batch with different work must not re-spawn the pool.
            session.run(smoke_scenario(seeds=(3, 4)))
            assert len(created) == 1
        # close() dropped the pool; the next batch lazily spawns a fresh one.
        assert session._pool is None

    def test_close_is_idempotent_without_a_pool(self):
        session = Session()
        session.close()
        session.close()


class TestResultStore:
    def test_runs_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        runs = Session().run_metrics(smoke_scenario(adversary=None, seeds=(1,)))
        store.save_runs("digest", runs)
        assert store.load_runs("digest") == runs

    def test_missing_and_corrupt_artifacts_read_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_runs("missing") is None
        store.path_for("runs", "bad").write_text("{not json", encoding="utf-8")
        assert store.load_runs("bad") is None

    def test_invalid_kind_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("../escape", "digest")

    def test_store_survives_across_sessions(self, tmp_path, monkeypatch):
        scenario = smoke_scenario(seeds=(1,))
        store = ResultStore(tmp_path)
        first = Session(store=store).run(scenario)
        # A brand-new session (fresh in-memory cache) must be able to answer
        # entirely from the on-disk artifacts, as a separate process would.
        monkeypatch.setattr(
            session_module,
            "execute_point",
            lambda *args, **kwargs: pytest.fail("store miss"),
        )
        second = Session(store=ResultStore(tmp_path)).run(scenario)
        assert second.assessment == first.assessment
        assert second.attacked_runs == first.attacked_runs

    def test_result_artifact_is_persisted(self, tmp_path):
        scenario = smoke_scenario(seeds=(1,))
        store = ResultStore(tmp_path)
        result = Session(store=store).run(scenario)
        payload = store.load_json("result", scenario.digest)
        assert payload is not None
        restored = session_module.ExperimentResult.from_dict(payload)
        assert restored.assessment == result.assessment
        assert restored.scenario_digest == scenario.digest

    def test_clear_removes_artifacts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_json("runs", "d1", [])
        store.save_json("result", "d2", {})
        assert len(store.artifacts()) == 2
        assert store.clear() == 2
        assert store.artifacts() == []
