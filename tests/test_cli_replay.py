"""End-to-end CLI tests for record, replay, bisect, checkpoint, and fork."""

import json

import pytest

from repro import units
from repro.api import AdversarySpec, ResultStore, Scenario
from repro.cli import main


@pytest.fixture(scope="module")
def recorded_store(tmp_path_factory):
    """A store populated by ``run --record`` for one point scenario."""
    root = tmp_path_factory.mktemp("cli-replay")
    scenario = Scenario(
        name="cli replay point",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "pipe_stoppage", {"attack_duration_days": 20.0, "coverage": 1.0}
        ),
        seeds=(1,),
    )
    scenario_path = scenario.save(root / "scenario.json")
    store_dir = root / "store"
    assert main(["run", str(scenario_path), "--store", str(store_dir), "--record"]) == 0
    return scenario, scenario_path, ResultStore(store_dir)


class TestRecordFlag:
    def test_record_produces_traces(self, recorded_store):
        _, _, store = recorded_store
        assert len(store.trace_paths()) == 2  # attacked + baseline

    def test_record_without_store_is_an_error(self, recorded_store):
        _, scenario_path, _ = recorded_store
        with pytest.raises(SystemExit):
            main(["run", str(scenario_path), "--record"])


class TestReplayCommand:
    def test_replay_verifies_a_trace(self, recorded_store, capsys):
        _, _, store = recorded_store
        trace = store.trace_paths()[0]
        assert main(["replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out

    def test_replay_expect_digest_mismatch_fails(self, recorded_store, capsys):
        _, _, store = recorded_store
        trace = store.trace_paths()[0]
        assert main(["replay", str(trace), "--expect-digest", "f" * 64]) == 1

    def test_replay_list_filters_records(self, recorded_store, capsys):
        _, _, store = recorded_store
        trace = store.trace_paths()[0]
        assert main(["replay", str(trace), "--list", "--kinds", "send"]) == 0
        out = capsys.readouterr().out
        assert "send" in out
        assert "poll" not in out


class TestBisectCommand:
    def test_identical_traces_exit_zero(self, recorded_store, capsys):
        _, _, store = recorded_store
        trace = str(store.trace_paths()[0])
        assert main(["bisect", trace, trace]) == 0
        assert "identical" in capsys.readouterr().out

    def test_different_traces_exit_one(self, recorded_store, capsys):
        _, _, store = recorded_store
        traces = store.trace_paths()
        assert main(["bisect", str(traces[0]), str(traces[1])]) == 1


class TestCheckpointForkCommands:
    def test_checkpoint_then_fork_roundtrip(self, recorded_store, tmp_path, capsys):
        _, scenario_path, _ = recorded_store
        ckpt = tmp_path / "prefix.ckpt.gz"
        assert (
            main(
                [
                    "checkpoint",
                    str(scenario_path),
                    "--baseline",
                    "--at-days",
                    "60",
                    "--out",
                    str(ckpt),
                ]
            )
            == 0
        )
        assert ckpt.exists()
        capsys.readouterr()

        plain_out = tmp_path / "plain.json"
        assert main(["fork", str(ckpt), "--out", str(plain_out)]) == 0
        capsys.readouterr()

        forked_out = tmp_path / "forked.json"
        assert (
            main(
                [
                    "fork",
                    str(ckpt),
                    "--adversary",
                    "pipe_stoppage",
                    "--params",
                    '{"attack_duration_days": 30.0, "coverage": 1.0}',
                    "--out",
                    str(forked_out),
                ]
            )
            == 0
        )
        plain = json.loads(plain_out.read_text())
        forked = json.loads(forked_out.read_text())
        assert plain["digest"] != forked["digest"]

    def test_fork_rejects_malformed_params(self, recorded_store, tmp_path):
        _, scenario_path, _ = recorded_store
        ckpt = tmp_path / "prefix.ckpt.gz"
        main(
            [
                "checkpoint",
                str(scenario_path),
                "--baseline",
                "--at-days",
                "30",
                "--out",
                str(ckpt),
            ]
        )
        with pytest.raises(SystemExit):
            main(
                [
                    "fork",
                    str(ckpt),
                    "--adversary",
                    "pipe_stoppage",
                    "--params",
                    "not json",
                ]
            )

    def test_checkpoint_rejects_past_duration_instants(self, recorded_store, tmp_path):
        _, scenario_path, _ = recorded_store
        with pytest.raises(SystemExit):
            main(
                [
                    "checkpoint",
                    str(scenario_path),
                    "--at-days",
                    "100000",
                    "--out",
                    str(tmp_path / "x.ckpt.gz"),
                ]
            )


class TestStorePruneTraces:
    def test_store_prune_kind_trace(self, recorded_store, capsys):
        _, _, store = recorded_store
        orphan = store.root / "trace-cafe.jsonl.gz.tmp"
        orphan.write_bytes(b"torn")
        assert main(["store", "prune", "--store", str(store.root), "--kind", "trace"]) == 0
        assert store.trace_paths() == []
        assert not orphan.exists()
