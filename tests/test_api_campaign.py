"""Tests for declarative campaigns: expansion, round-trip, resumable runs."""

import json

import pytest

from repro import units
from repro.api import (
    AdversarySpec,
    Campaign,
    CampaignRunner,
    ResultStore,
    Scenario,
    Session,
)
from repro.api.campaign import campaign_rows, run_campaign
from repro.experiments.bench import digest_rows


def point_scenario(**overrides):
    fields = dict(
        name="campaign test",
        base="smoke",
        sim={"duration": units.months(5)},
        adversary=AdversarySpec(
            "pipe_stoppage",
            {"attack_duration_days": 45.0, "coverage": 1.0, "recuperation_days": 15.0},
        ),
        seeds=(1,),
    )
    fields.update(overrides)
    return Scenario(**fields)


def grid_campaign(**campaign_kwargs):
    return Campaign.from_grid(
        "grid",
        point_scenario(),
        {
            "adversary.coverage": [0.4, 1.0],
            "adversary.attack_duration_days": [30.0, 60.0],
        },
        **campaign_kwargs,
    )


class TestExpansion:
    def test_cartesian_order_first_axis_outermost(self):
        points = grid_campaign().expand()
        assert len(points) == 4
        assert [p.parameters["coverage"] for p in points] == [0.4, 0.4, 1.0, 1.0]
        assert [p.parameters["attack_duration_days"] for p in points] == [
            30.0,
            60.0,
            30.0,
            60.0,
        ]

    def test_zip_axis_advances_targets_in_lockstep(self):
        campaign = Campaign(name="zip", scenario=point_scenario(adversary=None))
        campaign.add_axis(
            **{
                "protocol.poll_interval": [units.months(2), units.months(3)],
                "params.poll_interval_months": [2.0, 3.0],
            }
        )
        points = campaign.expand()
        assert len(points) == 2
        for point, months in zip(points, (2.0, 3.0)):
            assert point.parameters["poll_interval_months"] == months
            protocol, _ = point.scenario.resolve()
            assert protocol.poll_interval == units.months(months)

    def test_zip_axis_length_mismatch_is_rejected(self):
        campaign = Campaign(name="bad", scenario=point_scenario())
        with pytest.raises(ValueError):
            campaign.add_axis(
                **{"adversary.coverage": [0.4, 1.0], "params.label": ["just one"]}
            )

    def test_invalid_target_scope_is_rejected(self):
        campaign = Campaign(name="bad", scenario=point_scenario())
        with pytest.raises(ValueError):
            campaign.add_axis(**{"bogus.field": [1, 2]})

    def test_adversary_axis_without_adversary_is_rejected(self):
        campaign = Campaign(name="bad", scenario=point_scenario(adversary=None))
        campaign.add_axis(**{"adversary.coverage": [1.0]})
        with pytest.raises(ValueError):
            campaign.expand()

    def test_sweep_scenario_base_is_rejected(self):
        sweep = point_scenario(sweep={"adversary.coverage": [0.4, 1.0]})
        with pytest.raises(ValueError):
            Campaign(name="bad", scenario=sweep)

    def test_len_counts_grid_points_without_expanding(self):
        assert len(grid_campaign()) == 4

    def test_from_sweep_matches_scenario_expand_digests(self):
        sweep = point_scenario(
            sweep={
                "adversary.coverage": [0.4, 1.0],
                "adversary.attack_duration_days": [30.0, 60.0],
            }
        )
        campaign = Campaign.from_sweep(sweep)
        expected = [point.digest for point in sweep.expand()]
        assert [point.digest for point in campaign.expand()] == expected

    def test_expansion_does_not_mutate_the_base_scenario(self):
        campaign = grid_campaign()
        before = campaign.scenario.adversary.params.copy()
        campaign.expand()
        campaign.expand()
        assert campaign.scenario.adversary.params == before


class TestIdentity:
    def test_digest_is_spelling_independent(self):
        sweep = point_scenario(
            sweep={
                "adversary.coverage": [0.4, 1.0],
                "adversary.attack_duration_days": [30.0, 60.0],
            }
        )
        assert Campaign.from_sweep(sweep).digest == grid_campaign().digest

    def test_digest_changes_with_axis_order(self):
        flipped = Campaign.from_grid(
            "flipped",
            point_scenario(),
            {
                "adversary.attack_duration_days": [30.0, 60.0],
                "adversary.coverage": [0.4, 1.0],
            },
        )
        assert flipped.digest != grid_campaign().digest

    def test_json_round_trip_preserves_digest_and_axes(self, tmp_path):
        campaign = grid_campaign(exporter="attack_sweep", description="round trip")
        path = campaign.save(tmp_path / "campaign.json")
        restored = Campaign.load(path)
        assert restored.digest == campaign.digest
        assert restored.axes == campaign.axes
        assert restored.exporter == "attack_sweep"
        assert restored.description == "round trip"
        # The artifact is honest JSON with ordered axes.
        payload = json.loads(path.read_text())
        assert [list(axis) for axis in payload["axes"]] == [
            ["adversary.coverage"],
            ["adversary.attack_duration_days"],
        ]


class TestRunner:
    def test_run_without_store_runs_everything(self):
        results = CampaignRunner(Session()).run(grid_campaign())
        assert len(results) == 4
        assert [p.index for p in results] == [0, 1, 2, 3]

    def test_status_counts_store_state(self, tmp_path):
        campaign = grid_campaign()
        runner = CampaignRunner(Session(store=ResultStore(tmp_path)))
        before = runner.status(campaign)
        assert before.total == 4 and not before.completed
        runner.run(campaign, max_points=3)
        after = runner.status(campaign)
        assert len(after.completed) == 3
        assert [point.index for point in after.pending] == [3]
        assert not after.complete

    def test_killed_campaign_resumes_to_identical_digests(self, tmp_path):
        campaign = grid_campaign(exporter="attack_sweep")

        # Uninterrupted reference run (fresh store).
        reference_runner = CampaignRunner(
            Session(store=ResultStore(tmp_path / "reference"))
        )
        reference_runner.run(campaign)
        reference_digest = digest_rows(reference_runner.rows(campaign))

        # Simulated kill after 2 points, then resume with a *new* runner
        # (fresh session, fresh in-memory cache) against the same store.
        store_dir = tmp_path / "killed"
        CampaignRunner(Session(store=ResultStore(store_dir))).run(
            campaign, max_points=2
        )
        resumed_runner = CampaignRunner(Session(store=ResultStore(store_dir)))
        resumed = resumed_runner.resume(campaign)
        assert len(resumed) == 4
        assert resumed_runner.status(campaign).complete
        assert digest_rows(resumed_runner.rows(campaign)) == reference_digest

    def test_resumed_points_are_loaded_not_recomputed(self, tmp_path, monkeypatch):
        from repro.api import session as session_module

        campaign = grid_campaign()
        store = ResultStore(tmp_path)
        CampaignRunner(Session(store=store)).run(campaign)
        # Resuming a complete campaign must touch no simulation at all.
        monkeypatch.setattr(
            session_module,
            "execute_point",
            lambda *args, **kwargs: pytest.fail("resume recomputed a point"),
        )
        results = CampaignRunner(Session(store=ResultStore(tmp_path))).resume(campaign)
        assert len(results) == 4

    def test_label_only_points_share_digest_but_keep_their_labels(self, tmp_path):
        # A params.* axis deliberately does not change the experiment
        # identity, so both points share one result artifact — but a
        # store-loaded ResultSet must still report each point's own labels.
        campaign = Campaign(name="labels", scenario=point_scenario(adversary=None))
        campaign.add_axis(**{"params.mode": ["a", "b"]})
        points = campaign.expand()
        assert points[0].digest == points[1].digest

        fresh = CampaignRunner(Session(store=ResultStore(tmp_path))).run(campaign)
        assert [p.parameters["mode"] for p in fresh] == ["a", "b"]
        loaded = CampaignRunner(Session(store=ResultStore(tmp_path))).result_set(
            campaign
        )
        assert [p.parameters["mode"] for p in loaded] == ["a", "b"]
        assert [p.label for p in loaded] == [points[0].label, points[1].label]

    def test_result_set_raises_on_incomplete_campaign(self, tmp_path):
        campaign = grid_campaign()
        runner = CampaignRunner(Session(store=ResultStore(tmp_path)))
        runner.run(campaign, max_points=1)
        with pytest.raises(LookupError):
            runner.result_set(campaign)

    def test_manifest_artifact_records_completion(self, tmp_path):
        campaign = grid_campaign()
        store = ResultStore(tmp_path)
        CampaignRunner(Session(store=store)).run(campaign, max_points=2)
        manifest = store.load_json("campaign", campaign.digest)
        assert manifest["total"] == 4
        assert [p["complete"] for p in manifest["points"]] == [
            True,
            True,
            False,
            False,
        ]

    def test_run_campaign_uses_the_shared_default_session(self):
        rows = campaign_rows(
            Campaign.from_grid(
                "tiny",
                point_scenario(),
                {"adversary.coverage": [1.0]},
                exporter="attack_sweep",
            )
        )
        assert len(rows) == 1
        assert rows[0]["coverage"] == 1.0
        assert rows[0]["delay_ratio"] >= 1.0

    def test_run_campaign_partial_helper(self):
        results = run_campaign(grid_campaign(), session=Session(), max_points=2)
        assert len(results) == 2
