"""Unit tests for archival units and the materialized content store."""

import pytest

from repro import units
from repro.storage.au import ArchivalUnit, ContentStore, synthetic_content


class TestArchivalUnit:
    def test_block_count_exact_division(self):
        au = ArchivalUnit("a", size_bytes=10 * units.MB, block_size=units.MB)
        assert au.n_blocks == 10

    def test_block_count_with_partial_last_block(self):
        au = ArchivalUnit("a", size_bytes=units.MB + 1, block_size=units.MB)
        assert au.n_blocks == 2
        assert au.block_length(0) == units.MB
        assert au.block_length(1) == 1

    def test_block_length_out_of_range(self):
        au = ArchivalUnit("a", size_bytes=2 * units.MB, block_size=units.MB)
        with pytest.raises(IndexError):
            au.block_length(2)
        with pytest.raises(IndexError):
            au.block_length(-1)

    def test_rejects_invalid_geometry(self):
        with pytest.raises(ValueError):
            ArchivalUnit("a", size_bytes=0, block_size=1)
        with pytest.raises(ValueError):
            ArchivalUnit("a", size_bytes=10, block_size=0)
        with pytest.raises(ValueError):
            ArchivalUnit("a", size_bytes=10, block_size=20)

    def test_paper_au_geometry(self):
        au = ArchivalUnit("journal-2004", size_bytes=units.GB // 2, block_size=units.MB)
        assert au.n_blocks == 512


class TestSyntheticContent:
    def test_content_is_deterministic(self):
        au = ArchivalUnit("a", size_bytes=4 * units.KB, block_size=units.KB)
        assert synthetic_content(au) == synthetic_content(au)

    def test_content_differs_across_aus(self):
        a = ArchivalUnit("a", size_bytes=2 * units.KB, block_size=units.KB)
        b = ArchivalUnit("b", size_bytes=2 * units.KB, block_size=units.KB)
        assert synthetic_content(a) != synthetic_content(b)

    def test_content_differs_across_versions(self):
        au = ArchivalUnit("a", size_bytes=2 * units.KB, block_size=units.KB)
        assert synthetic_content(au, version=0) != synthetic_content(au, version=1)

    def test_block_lengths_match_geometry(self):
        au = ArchivalUnit("a", size_bytes=units.KB * 3 + 100, block_size=units.KB)
        blocks = synthetic_content(au)
        assert [len(b) for b in blocks] == [1024, 1024, 1024, 100]


class TestContentStore:
    def setup_method(self):
        self.au = ArchivalUnit("a", size_bytes=4 * units.KB, block_size=units.KB)
        self.store = ContentStore(self.au)

    def test_roundtrip_blocks(self):
        assert len(self.store.blocks()) == 4
        assert self.store.block(0) == synthetic_content(self.au)[0]

    def test_corrupt_block_changes_content_but_not_length(self):
        original = self.store.block(1)
        self.store.corrupt_block(1)
        assert self.store.block(1) != original
        assert len(self.store.block(1)) == len(original)

    def test_write_block_installs_repair(self):
        good = self.store.block(2)
        self.store.corrupt_block(2)
        self.store.write_block(2, good)
        assert self.store.block(2) == good

    def test_write_block_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            self.store.write_block(0, b"short")

    def test_digest_map_detects_corruption(self):
        before = self.store.digest_map()
        self.store.corrupt_block(3)
        after = self.store.digest_map()
        assert before[3] != after[3]
        assert before[0] == after[0]

    def test_rejects_wrong_block_count(self):
        with pytest.raises(ValueError):
            ContentStore(self.au, blocks=[b"only-one"])
