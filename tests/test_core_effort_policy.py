"""Unit tests for the effort-balancing arithmetic."""

import pytest

from repro import units
from repro.config import ProtocolConfig
from repro.core.effort_policy import EffortPolicy
from repro.crypto.hashing import HashCostModel
from repro.storage.au import ArchivalUnit


@pytest.fixture
def au():
    return ArchivalUnit("au", size_bytes=64 * units.MB, block_size=units.MB)


@pytest.fixture
def policy():
    return EffortPolicy(ProtocolConfig(), HashCostModel(hash_rate=40 * units.MB))


class TestElementaryCosts:
    def test_au_hash_cost_matches_cost_model(self, policy, au):
        assert policy.au_hash_cost(au) == pytest.approx(64 / 40)

    def test_block_hash_cost(self, policy, au):
        assert policy.block_hash_cost(au) == pytest.approx(1 / 40)

    def test_repair_costs_are_positive_and_small(self, policy, au):
        assert 0 < policy.repair_supply_cost(au) < policy.au_hash_cost(au)
        assert 0 < policy.repair_apply_cost(au) < policy.au_hash_cost(au)


class TestSolicitationBalance:
    def test_poller_invests_more_than_the_voter(self, policy, au):
        """The core effort-balancing invariant (Section 5.1)."""
        effort = policy.solicitation(au)
        assert effort.poller_total > effort.voter_total

    def test_split_between_poll_and_pollproof(self, policy, au):
        effort = policy.solicitation(au)
        assert effort.introductory + effort.remaining == pytest.approx(effort.poller_total)
        fraction = effort.introductory / effort.poller_total
        assert fraction == pytest.approx(0.20)

    def test_vote_proof_covers_single_block_hash(self, policy, au):
        effort = policy.solicitation(au)
        assert effort.vote_proof_generation >= policy.block_hash_cost(au)

    def test_verification_much_cheaper_than_generation(self, policy, au):
        effort = policy.solicitation(au)
        assert effort.introductory_verification < 0.1 * effort.introductory
        assert effort.remaining_verification < 0.1 * effort.remaining
        assert effort.vote_proof_verification < 0.1 * effort.vote_generation

    def test_vote_generation_dominates_voter_cost(self, policy, au):
        effort = policy.solicitation(au)
        assert effort.vote_generation > 0.8 * effort.voter_total

    def test_bigger_au_costs_more(self, policy):
        small = ArchivalUnit("s", size_bytes=16 * units.MB, block_size=units.MB)
        big = ArchivalUnit("b", size_bytes=256 * units.MB, block_size=units.MB)
        assert policy.solicitation(big).poller_total > policy.solicitation(small).poller_total
        assert policy.solicitation(big).vote_generation > policy.solicitation(small).vote_generation

    def test_intro_fraction_config_is_respected(self, au):
        config = ProtocolConfig(introductory_effort_fraction=0.5)
        policy = EffortPolicy(config, HashCostModel())
        effort = policy.solicitation(au)
        assert effort.introductory == pytest.approx(effort.remaining)

    def test_adversary_repeat_attempts_cost_as_much_as_legitimacy(self, policy, au):
        """Section 6.3's calibration: ~5 dropped attempts cost ~100% of the
        legitimate poller effort (with the 0.2 in-debt admission probability
        and 20% introductory fraction)."""
        effort = policy.solicitation(au)
        expected_attempts = 1.0 / 0.2
        assert expected_attempts * effort.introductory == pytest.approx(
            effort.poller_total, rel=0.01
        )


class TestCommitmentsAndEvaluation:
    def test_voter_commitment_covers_vote_generation(self, policy, au):
        effort = policy.solicitation(au)
        assert policy.voter_commitment(au) >= effort.vote_generation

    def test_evaluation_base_cost_is_one_au_pass(self, policy, au):
        assert policy.evaluation_base_cost(au) == pytest.approx(policy.au_hash_cost(au))

    def test_per_vote_evaluation_cost_is_marginal(self, policy, au):
        assert policy.per_vote_evaluation_cost(au) < 0.1 * policy.evaluation_base_cost(au)

    def test_receipt_cost_is_negligible(self, policy, au):
        assert policy.evaluation_receipt_cost() < 1.0
