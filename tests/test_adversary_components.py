"""Unit tests for the composable adversary strategy components."""

import random

import pytest

from repro import units
from repro.adversary.adaptive import (
    ADAPTIVE_REGISTRY,
    AllVectors,
    RotateVectors,
    ThresholdSwitch,
    admission_rate,
    refusal_rate,
)
from repro.adversary.components import (
    COMPONENT_REGISTRIES,
    SCHEDULE_REGISTRY,
    TARGETING_REGISTRY,
    VECTOR_REGISTRY,
)
from repro.adversary.schedule import (
    ConstantSchedule,
    OnOffSchedule,
    PiecewiseSchedule,
    RampSchedule,
)
from repro.adversary.targeting import (
    RandomSubsetTargeting,
    RoundRobinTargeting,
    StickyTargeting,
    WeightedDamageTargeting,
    victim_count,
)

POPULATION = ["peer-%02d" % index for index in range(10)]


class TestVictimCount:
    def test_floor_of_one_victim(self):
        # 0.04 * 10 rounds to 0; the documented floor is one victim.
        assert victim_count(0.04, 10) == 1

    def test_rounds_above_the_floor(self):
        assert victim_count(0.55, 10) == 6
        assert victim_count(0.44, 10) == 4

    def test_clamped_to_population(self):
        assert victim_count(1.0, 3) == 3


class TestTargetingPolicies:
    def test_random_subset_is_deterministic_per_seed(self):
        policy = TARGETING_REGISTRY.build({"kind": "random_subset", "coverage": 0.5})
        first = policy.pick(random.Random(3), POPULATION, 0)
        second = policy.pick(random.Random(3), POPULATION, 0)
        assert first == second
        assert len(first) == 5

    def test_sticky_draws_once_and_repeats(self):
        policy = StickyTargeting(coverage=0.3)
        rng = random.Random(9)
        first = policy.pick(rng, POPULATION, 0)
        state_after_first = rng.getstate()
        later = policy.pick(rng, POPULATION, 5)
        assert later == first
        # No further randomness was consumed after the first pick.
        assert rng.getstate() == state_after_first

    def test_round_robin_consumes_no_rng_and_rotates(self):
        policy = RoundRobinTargeting(coverage=0.3)
        rng = random.Random(1)
        state = rng.getstate()
        first = policy.pick(rng, POPULATION, 0)
        second = policy.pick(rng, POPULATION, 1)
        third = policy.pick(rng, POPULATION, 2)
        assert rng.getstate() == state
        assert first == POPULATION[0:3]
        assert second == POPULATION[3:6]
        assert third == POPULATION[6:9]
        # Full coverage returns the population in order (the legacy
        # brute-force victim order).
        assert RoundRobinTargeting(coverage=1.0).pick(rng, POPULATION, 4) == POPULATION

    def test_weighted_damage_prefers_damaged_victims(self):
        class View:
            def victim_weight(self, peer_id):
                return 50.0 if peer_id == "peer-07" else 0.0

        policy = WeightedDamageTargeting(coverage=0.1, exponent=1.0)
        hits = sum(
            "peer-07" in policy.pick(random.Random(seed), POPULATION, 0, View())
            for seed in range(40)
        )
        assert hits > 30  # weight 51 vs 1 for the other nine peers

    def test_weighted_damage_without_view_is_uniform_but_deterministic(self):
        policy = WeightedDamageTargeting(coverage=0.5)
        first = policy.pick(random.Random(11), POPULATION, 0)
        second = policy.pick(random.Random(11), POPULATION, 0)
        assert first == second
        assert len(first) == 5

    def test_coverage_validation(self):
        for kind in ("random_subset", "sticky", "round_robin", "weighted_damage"):
            with pytest.raises(ValueError):
                TARGETING_REGISTRY.build({"kind": kind, "coverage": 0.0})


class TestSchedules:
    def test_constant_is_open_ended(self):
        schedule = ConstantSchedule()
        assert schedule.open_ended
        window = schedule.window(0)
        assert window.duration == float("inf")
        assert schedule.window(1) is None

    def test_on_off_matches_legacy_cycle(self):
        schedule = OnOffSchedule(attack_duration_days=45.0, recuperation_days=15.0)
        for index in range(3):
            window = schedule.window(index)
            assert window.duration == units.days(45.0)
            assert window.gap == units.days(15.0)
            assert window.intensity == 1.0

    def test_ramp_escalates_and_caps(self):
        schedule = RampSchedule(initial_intensity=0.25, step=0.5, max_intensity=1.0)
        assert schedule.window(0).intensity == 0.25
        assert schedule.window(1).intensity == 0.75
        assert schedule.window(2).intensity == 1.0
        assert schedule.window(9).intensity == 1.0

    def test_piecewise_repeats_and_pauses(self):
        schedule = PiecewiseSchedule(
            phases=[
                {"duration_days": 10.0, "intensity": 1.0, "gap_days": 5.0},
                {"duration_days": 20.0, "intensity": 0.0},
            ],
            repeat=True,
        )
        assert schedule.window(0).duration == units.days(10.0)
        assert schedule.window(1).intensity == 0.0  # a pure pause
        assert schedule.window(2).duration == units.days(10.0)  # wrapped

    def test_piecewise_without_repeat_ends(self):
        schedule = PiecewiseSchedule(
            phases=[{"duration_days": 10.0}], repeat=False
        )
        assert schedule.window(0) is not None
        assert schedule.window(1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffSchedule(attack_duration_days=0.0)
        with pytest.raises(ValueError):
            RampSchedule(initial_intensity=0.5, max_intensity=0.25)
        with pytest.raises(ValueError):
            PiecewiseSchedule(phases=[])


class TestAdaptivePolicies:
    def test_all_runs_every_vector(self):
        assert AllVectors().select(3, 4, []) == [0, 1, 2, 3]

    def test_rotate_cycles(self):
        policy = RotateVectors()
        assert [policy.select(i, 3, []) for i in range(4)] == [[0], [1], [2], [0]]

    def test_metrics(self):
        assert admission_rate({"invitations_sent": 10.0, "invitations_admitted": 4.0}) == 0.4
        assert admission_rate({}) == 1.0  # no sends -> no evidence of refusal
        assert refusal_rate({"invitations_sent": 10.0, "invitations_admitted": 4.0}) == 0.6

    def test_threshold_switch_escalates_once_and_sticks(self):
        policy = ThresholdSwitch(threshold=0.5, grace_windows=1)
        deltas_ok = [{"invitations_sent": 10.0, "invitations_admitted": 8.0}, {}]
        deltas_bad = [{"invitations_sent": 10.0, "invitations_admitted": 1.0}, {}]
        assert policy.select(0, 2, deltas_bad) == [0]  # grace window
        assert policy.select(1, 2, deltas_ok) == [0]  # healthy probe
        assert policy.select(2, 2, deltas_bad) == [1]  # degraded -> switch
        assert policy.switched_at == 2
        assert policy.select(3, 2, deltas_ok) == [1]  # permanent

    def test_threshold_switch_validation(self):
        with pytest.raises(ValueError):
            ThresholdSwitch(metric="nonsense")
        with pytest.raises(ValueError):
            ThresholdSwitch(grace_windows=0)


class TestComponentRegistries:
    def test_catalogs_are_complete(self):
        assert TARGETING_REGISTRY.names() == [
            "random_subset",
            "round_robin",
            "sticky",
            "weighted_damage",
        ]
        assert SCHEDULE_REGISTRY.names() == ["constant", "on_off", "piecewise", "ramp"]
        assert VECTOR_REGISTRY.names() == [
            "admission_flood",
            "brute_force_poll",
            "effort_attrition",
            "pipe_stoppage",
        ]
        assert ADAPTIVE_REGISTRY.names() == ["all", "rotate", "threshold_switch"]
        assert set(COMPONENT_REGISTRIES) == {
            "targeting",
            "schedule",
            "vector",
            "adaptive",
        }

    def test_unknown_kind_and_param_fail_fast(self):
        with pytest.raises(KeyError):
            TARGETING_REGISTRY.build({"kind": "nope"})
        with pytest.raises(TypeError):
            SCHEDULE_REGISTRY.build({"kind": "on_off", "bogus": 1})
        with pytest.raises(ValueError):
            VECTOR_REGISTRY.build({"no_kind": True})

    def test_canonical_merges_defaults(self):
        canonical = SCHEDULE_REGISTRY.canonical({"kind": "on_off"})
        assert canonical == {
            "kind": "on_off",
            "attack_duration_days": 30.0,
            "recuperation_days": 30.0,
            "intensity": 1.0,
        }
        # Spelling a default out changes nothing.
        assert canonical == SCHEDULE_REGISTRY.canonical(
            {"kind": "on_off", "intensity": 1.0}
        )

    def test_build_to_spec_round_trip(self):
        spec = {"kind": "ramp", "initial_intensity": 0.5}
        component = SCHEDULE_REGISTRY.build(spec)
        assert component.to_spec() == SCHEDULE_REGISTRY.canonical(spec)

    def test_catalog_rows_describe_components(self):
        rows = {row["kind"]: row for row in TARGETING_REGISTRY.catalog()}
        assert rows["random_subset"]["defaults"] == {"coverage": 1.0}
        assert rows["random_subset"]["description"]
