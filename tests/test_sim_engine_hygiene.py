"""Heap-hygiene tests for the fast-path event engine.

The slab-free engine keeps cancelled events in the heap until they are popped
or swept by a compaction pass, recycles recurring-event handles through a
freelist, and schedules fire-and-forget events without handles.  These tests
pin the hygiene invariants of that machinery: compaction triggers and
preserves behaviour, freelist reuse can never resurrect a cancelled callback,
and ``call_every`` honors its ``end`` bound exactly at the boundary.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestCompaction:
    def _flood_and_cancel(self, simulator, n_events, keep_every):
        fired = []
        handles = [
            simulator.schedule(float(index) + 1.0, fired.append, index)
            for index in range(n_events)
        ]
        survivors = []
        for index, handle in enumerate(handles):
            if index % keep_every == 0:
                survivors.append(index)
            else:
                handle.cancel()
        return fired, survivors

    def test_compaction_triggers_when_cancellations_dominate(self):
        simulator = Simulator()
        threshold = Simulator.COMPACTION_MIN_CANCELLED
        fired, survivors = self._flood_and_cancel(
            simulator, n_events=4 * threshold, keep_every=4
        )
        # Three quarters cancelled: well past "more than the threshold AND
        # outnumbering the live entries".
        assert simulator.compactions >= 1
        # Each sweep dropped the cancelled entries present at the time; at
        # most a sub-threshold residue of later cancellations may linger.
        lingering = len(simulator._queue) - simulator.pending_events()
        assert 0 <= lingering <= threshold

        simulator.run(until=10_000.0)
        assert fired == survivors

    def test_no_compaction_below_threshold(self):
        simulator = Simulator()
        fired, survivors = self._flood_and_cancel(simulator, n_events=40, keep_every=2)
        assert simulator.compactions == 0
        simulator.run(until=10_000.0)
        assert fired == survivors

    def test_pending_events_exact_through_cancel_pop_and_compaction(self):
        simulator = Simulator()
        threshold = Simulator.COMPACTION_MIN_CANCELLED
        n_events = 4 * threshold
        self._flood_and_cancel(simulator, n_events=n_events, keep_every=4)
        assert simulator.pending_events() == n_events // 4
        simulator.run(until=10_000.0)
        assert simulator.pending_events() == 0

    def test_cancel_during_run_keeps_results_correct(self):
        simulator = Simulator()
        fired = []
        threshold = Simulator.COMPACTION_MIN_CANCELLED
        late = [
            simulator.schedule(1000.0 + index, fired.append, index)
            for index in range(4 * threshold)
        ]

        def cancel_most():
            for index, handle in enumerate(late):
                if index % 4:
                    handle.cancel()

        simulator.schedule(1.0, cancel_most)
        simulator.run(until=100_000.0)
        assert fired == [index for index in range(4 * threshold) if index % 4 == 0]
        assert simulator.compactions >= 1


class TestFreelistReuse:
    def test_finished_recurrence_handle_is_reused(self):
        simulator = Simulator()
        first_ticks = []
        first = simulator.call_every(1.0, lambda: first_ticks.append(simulator.now), end=3.0)
        simulator.run(until=10.0)
        assert first_ticks == [1.0, 2.0, 3.0]
        # The recurrence ended at its bound; its handle was retired.
        assert first.time is None
        assert len(simulator._free) == 1
        retired = simulator._free[0]

        second_ticks = []
        second = simulator.call_every(5.0, lambda: second_ticks.append(simulator.now))
        # The new recurrence drew the retired handle from the freelist.
        assert second._handle is retired
        simulator.run(until=20.0)
        assert second_ticks == [15.0, 20.0]
        # Reuse never resurrects the finished recurrence's callback.
        assert first_ticks == [1.0, 2.0, 3.0]

    def test_reuse_never_resurrects_a_cancelled_callback(self):
        simulator = Simulator()
        cancelled_ticks = []
        victim = simulator.call_every(1.0, lambda: cancelled_ticks.append(simulator.now), end=5.0)
        simulator.run(until=5.0)
        assert victim.time is None  # ended; token retired to the freelist

        fresh_ticks = []
        fresh = simulator.call_every(1.0, lambda: fresh_ticks.append(simulator.now))
        # Cancelling the finished recurrence (stale handle long retired and
        # reused by ``fresh``) must not touch the new recurrence.
        victim.cancel()
        simulator.run(until=8.0)
        assert cancelled_ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert fresh_ticks == [6.0, 7.0, 8.0]
        assert fresh.cancelled is False

    def test_cancelled_recurrence_stops_and_freelist_stays_safe(self):
        simulator = Simulator()
        ticks = []
        recurrence = simulator.call_every(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=2.0)
        recurrence.cancel()
        later_ticks = []
        replacement = simulator.call_every(1.0, lambda: later_ticks.append(simulator.now))
        simulator.run(until=4.0)
        assert ticks == [1.0, 2.0]
        assert later_ticks == [3.0, 4.0]
        # Cancelling again is a no-op and cannot reach the replacement.
        recurrence.cancel()
        simulator.run(until=5.0)
        assert later_ticks == [3.0, 4.0, 5.0]
        assert replacement.cancelled is False


class TestCallEveryEndBoundary:
    def test_tick_landing_exactly_on_end_fires(self):
        simulator = Simulator()
        ticks = []
        simulator.call_every(2.0, lambda: ticks.append(simulator.now), end=6.0)
        simulator.run(until=100.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_tick_past_end_never_fires(self):
        simulator = Simulator()
        ticks = []
        simulator.call_every(2.0, lambda: ticks.append(simulator.now), end=5.0)
        simulator.run(until=100.0)
        assert ticks == [2.0, 4.0]

    def test_start_and_end_boundaries_together(self):
        simulator = Simulator()
        ticks = []
        simulator.call_every(1.0, lambda: ticks.append(simulator.now), start=3.0, end=5.0)
        simulator.run(until=100.0)
        assert ticks == [3.0, 4.0, 5.0]


class TestFireAndForgetPost:
    def test_post_runs_without_handle(self):
        simulator = Simulator()
        fired = []
        assert simulator.post(1.0, fired.append, "a") is None
        simulator.post_at(2.0, fired.append, "b")
        simulator.run(until=3.0)
        assert fired == ["a", "b"]

    def test_post_rejects_past_times(self):
        simulator = Simulator()
        simulator.run(until=5.0)
        with pytest.raises(SimulationError):
            simulator.post(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.post_at(4.0, lambda: None)

    def test_post_orders_with_scheduled_events(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1.0, order.append, "scheduled")
        simulator.post(1.0, order.append, "posted")
        simulator.post(0.5, order.append, "early", priority=-1)
        simulator.run(until=2.0)
        assert order == ["early", "scheduled", "posted"]
