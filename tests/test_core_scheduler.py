"""Unit tests for the per-peer task schedule."""

import pytest

from repro.core.scheduler import TaskSchedule


class TestFindSlot:
    def test_empty_schedule_starts_at_earliest(self):
        schedule = TaskSchedule()
        assert schedule.find_slot(10.0, earliest=5.0, deadline=100.0) == 5.0

    def test_slot_must_fit_before_deadline(self):
        schedule = TaskSchedule()
        assert schedule.find_slot(10.0, earliest=95.0, deadline=100.0) is None

    def test_slot_after_existing_reservation(self):
        schedule = TaskSchedule()
        schedule.reserve(10.0, earliest=0.0, deadline=100.0)
        assert schedule.find_slot(5.0, earliest=0.0, deadline=100.0) == 10.0

    def test_slot_in_gap_between_reservations(self):
        schedule = TaskSchedule()
        schedule.reserve_at(0.0, 10.0)
        schedule.reserve_at(30.0, 10.0)
        assert schedule.find_slot(5.0, earliest=0.0, deadline=100.0) == 10.0
        assert schedule.find_slot(25.0, earliest=0.0, deadline=100.0) == 40.0

    def test_rejects_non_positive_duration(self):
        schedule = TaskSchedule()
        with pytest.raises(ValueError):
            schedule.find_slot(0.0, 0.0, 10.0)


class TestReserve:
    def test_reservations_never_overlap(self):
        schedule = TaskSchedule()
        reservations = [schedule.reserve(7.0, 0.0, 1000.0) for _ in range(20)]
        assert all(r is not None for r in reservations)
        ordered = sorted(reservations, key=lambda r: r.start)
        for earlier, later in zip(ordered, ordered[1:]):
            assert earlier.end <= later.start

    def test_reserve_returns_none_when_full(self):
        schedule = TaskSchedule()
        assert schedule.reserve(50.0, 0.0, 100.0) is not None
        assert schedule.reserve(60.0, 0.0, 100.0) is None
        assert schedule.refusals == 1

    def test_reserve_at_rejects_overlap(self):
        schedule = TaskSchedule()
        assert schedule.reserve_at(10.0, 10.0) is not None
        assert schedule.reserve_at(15.0, 10.0) is None
        assert schedule.reserve_at(20.0, 5.0) is not None

    def test_reserve_at_rejects_bad_duration(self):
        schedule = TaskSchedule()
        with pytest.raises(ValueError):
            schedule.reserve_at(0.0, 0.0)

    def test_total_reserved_tracks_durations(self):
        schedule = TaskSchedule()
        schedule.reserve(5.0, 0.0, 100.0)
        schedule.reserve(7.0, 0.0, 100.0)
        assert schedule.total_reserved == pytest.approx(12.0)

    def test_labels_are_preserved(self):
        schedule = TaskSchedule()
        reservation = schedule.reserve(5.0, 0.0, 100.0, label="vote:poll-1")
        assert reservation.label == "vote:poll-1"


class TestCancelAndPrune:
    def test_cancel_releases_the_slot(self):
        schedule = TaskSchedule()
        reservation = schedule.reserve(50.0, 0.0, 100.0)
        assert schedule.reserve(60.0, 0.0, 100.0) is None
        assert schedule.cancel(reservation)
        assert schedule.reserve(60.0, 0.0, 100.0) is not None

    def test_cancel_twice_returns_false(self):
        schedule = TaskSchedule()
        reservation = schedule.reserve(5.0, 0.0, 100.0)
        assert schedule.cancel(reservation)
        assert not schedule.cancel(reservation)

    def test_prune_drops_finished_reservations(self):
        schedule = TaskSchedule()
        schedule.reserve_at(0.0, 10.0)
        schedule.reserve_at(20.0, 10.0)
        schedule.reserve_at(100.0, 10.0)
        dropped = schedule.prune(now=50.0)
        assert dropped == 2
        assert len(schedule) == 1

    def test_prune_keeps_in_progress_reservations(self):
        schedule = TaskSchedule()
        schedule.reserve_at(0.0, 100.0)
        assert schedule.prune(now=50.0) == 0


class TestUtilization:
    def test_busy_time_counts_overlap_only(self):
        schedule = TaskSchedule()
        schedule.reserve_at(0.0, 10.0)
        schedule.reserve_at(20.0, 10.0)
        assert schedule.busy_time(5.0, 25.0) == pytest.approx(10.0)

    def test_utilization_fraction(self):
        schedule = TaskSchedule()
        schedule.reserve_at(0.0, 50.0)
        assert schedule.utilization(0.0, 100.0) == pytest.approx(0.5)

    def test_empty_window(self):
        schedule = TaskSchedule()
        assert schedule.busy_time(10.0, 10.0) == 0.0
        assert schedule.utilization(10.0, 5.0) == 0.0
