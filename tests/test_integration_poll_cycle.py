"""Integration tests: a complete poll among a small population of real peers."""

import pytest

from repro import units
from repro.core.poller import PollOutcome
from repro.core.reputation import Grade
from repro.storage.au import ArchivalUnit


def build_population(peer_factory, small_au, count=8):
    """Create ``count`` peers all preserving ``small_au`` and knowing each other."""
    peers = [peer_factory() for _ in range(count)]
    ids = [p.peer_id for p in peers]
    for peer in peers:
        others = [pid for pid in ids if pid != peer.peer_id]
        peer.add_au(small_au, friends=others[:2], initial_reference_list=others)
    return peers


class TestSuccessfulPoll:
    def test_poll_completes_successfully(self, simulator, peer_factory, small_au, collector):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)

        assert poll.concluded
        assert poll.outcome == PollOutcome.SUCCESS
        assert poll.record is not None
        assert poll.record.success
        assert poll.record.inner_votes >= poller.config.quorum
        assert poll.record.disagreeing == 0

    def test_votes_were_solicited_individually_over_time(
        self, simulator, peer_factory, small_au, collector
    ):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        # Desynchronization: voters computed their votes at spread-out times.
        completion_times = [
            progress.estimated_completion
            for progress in poll.voters.values()
            if progress.estimated_completion > 0
        ]
        assert len(completion_times) >= poller.config.quorum
        assert max(completion_times) - min(completion_times) > units.DAY

    def test_poller_charged_more_effort_than_any_single_voter(
        self, simulator, peer_factory, small_au, collector
    ):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        voter_efforts = [p.effort.total for p in peers[1:]]
        assert poller.effort.total > max(voter_efforts)

    def test_reputation_updated_reciprocally(self, simulator, peer_factory, small_au, collector):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        now = simulator.now
        voters_that_voted = list(poll.votes)
        assert voters_that_voted
        poller_state = poller.au_state(small_au.au_id)
        for voter_id in voters_that_voted:
            # The poller owes each voter a vote: their grade at the poller rose.
            assert poller_state.known_peers.grade_of(voter_id, now) is Grade.CREDIT
        # And each voter recorded the poller as being in its debt.
        for peer in peers[1:]:
            if peer.peer_id in voters_that_voted:
                grade = peer.au_state(small_au.au_id).known_peers.grade_of(poller.peer_id, now)
                assert grade is Grade.DEBT

    def test_reference_list_churned_after_poll(self, simulator, peer_factory, small_au, collector):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        before = set(poller.au_state(small_au.au_id).reference_list.entries())
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        after = set(poller.au_state(small_au.au_id).reference_list.entries())
        used_inner_voters = {
            voter_id for voter_id, vote in poll.votes.items()
            if poll.voters[voter_id].circle == "inner"
        }
        assert used_inner_voters
        # Used inner-circle voters are removed; friend bias may legitimately
        # re-insert the few that are also on the operator's friends list.
        friends = set(poller.au_state(small_au.au_id).reference_list.friends)
        assert not ((used_inner_voters - friends) & after), (
            "non-friend inner-circle voters must be removed"
        )
        assert before != after

    def test_evaluation_receipts_close_voter_sessions(
        self, simulator, peer_factory, small_au, collector
    ):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + 2 * units.DAY)
        for peer in peers:
            assert peer.active_voter_sessions() == 0

    def test_next_poll_is_scheduled_at_fixed_rate(self, simulator, peer_factory, small_au, collector):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        first = poller.start_poll(small_au.au_id)
        simulator.run(until=first.deadline + 2 * units.DAY)
        # A second poll must have started right after the first one's deadline.
        state = poller.au_state(small_au.au_id)
        assert state.polls_called == 2
        assert state.active_poll is not None
        assert state.active_poll.started_at == pytest.approx(first.deadline)

    def test_collector_records_the_poll(self, simulator, peer_factory, small_au, collector):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        assert collector.successful_polls >= 1
        assert collector.votes_received >= poller.config.quorum
        assert collector.invitations_sent >= poller.config.quorum


class TestInquoratePoll:
    def test_too_few_reachable_voters_fails_the_poll(
        self, simulator, peer_factory, small_au, collector
    ):
        # Only two other peers exist: the quorum of 3 cannot be met.
        peers = build_population(peer_factory, small_au, count=3)
        poller = peers[0]
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        assert poll.concluded
        assert poll.outcome == PollOutcome.INQUORATE
        assert collector.failed_polls >= 1

    def test_unreachable_population_fails_the_poll(
        self, simulator, network, peer_factory, small_au, collector
    ):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        for peer in peers[1:]:
            network.block(peer.peer_id)
        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        assert poll.outcome == PollOutcome.INQUORATE
        assert len(poll.votes) == 0


class TestDamageAndRepair:
    def test_damaged_poller_repairs_itself_from_the_majority(
        self, simulator, peer_factory, small_au, collector
    ):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        replica = poller.au_state(small_au.au_id).replica
        replica.damage_block(2)
        replica.damage_block(5)
        assert replica.is_damaged

        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)

        assert poll.outcome == PollOutcome.SUCCESS
        assert not replica.is_damaged, "repairs must restore the canonical content"
        assert poll.repairs_applied >= 2
        assert collector.repairs_supplied >= 2

    def test_single_damaged_voter_does_not_trigger_repair_at_poller(
        self, simulator, peer_factory, small_au, collector
    ):
        peers = build_population(peer_factory, small_au)
        poller, damaged_voter = peers[0], peers[1]
        damaged_voter.au_state(small_au.au_id).replica.damage_block(1)

        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)

        assert poll.outcome == PollOutcome.SUCCESS
        assert not poller.au_state(small_au.au_id).replica.is_damaged
        # The disagreeing voter is in the minority; at most a frivolous
        # repair may have been exchanged, never an adopted one.
        assert poll.record.disagreeing <= 1

    def test_poller_does_not_adopt_minority_damage(self, simulator, peer_factory, small_au, collector):
        peers = build_population(peer_factory, small_au)
        poller = peers[0]
        # Two voters share identical damage, but they are still a small
        # minority: the poller must not adopt their version.
        tag = peers[1].au_state(small_au.au_id).replica.damage_block(3)
        peers[2].au_state(small_au.au_id).replica.damage_block(3, tag=tag)

        poll = poller.start_poll(small_au.au_id)
        simulator.run(until=poll.deadline + units.DAY)
        assert not poller.au_state(small_au.au_id).replica.is_damaged
