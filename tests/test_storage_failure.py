"""Unit tests for the Poisson storage-failure injector."""

import random

import pytest

from repro import units
from repro.sim.engine import Simulator
from repro.storage.au import ArchivalUnit
from repro.storage.failure import StorageFailureModel
from repro.storage.replica import ReplicaSet


class FakePeer:
    """Minimal structural stand-in for a peer."""

    def __init__(self, peer_id, n_aus=2):
        self.peer_id = peer_id
        self.replicas = ReplicaSet(peer_id)
        for index in range(n_aus):
            self.replicas.add(
                ArchivalUnit("au-%d" % index, size_bytes=4 * units.MB, block_size=units.MB)
            )


class TestStorageFailureModel:
    def test_zero_rate_injects_nothing(self):
        simulator = Simulator()
        model = StorageFailureModel(simulator, random.Random(1), 0.0, end_time=units.YEAR)
        peer = FakePeer("p1")
        model.register_peer(peer)
        simulator.run(until=units.YEAR)
        assert model.events_injected == 0
        assert peer.replicas.damaged_count() == 0

    def test_negative_rate_rejected(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            StorageFailureModel(simulator, random.Random(1), -1.0, end_time=1.0)

    def test_damage_events_are_injected_at_roughly_the_configured_rate(self):
        simulator = Simulator()
        rate = 20.0 / units.YEAR
        model = StorageFailureModel(simulator, random.Random(2), rate, end_time=units.YEAR)
        peer = FakePeer("p1")
        model.register_peer(peer)
        simulator.run(until=units.YEAR)
        assert 5 <= model.events_injected <= 45

    def test_each_event_damages_one_block_of_one_replica(self):
        simulator = Simulator()
        rate = 5.0 / units.YEAR
        model = StorageFailureModel(simulator, random.Random(3), rate, end_time=units.YEAR)
        peer = FakePeer("p1")
        model.register_peer(peer)
        simulator.run(until=units.YEAR)
        total_damaged_blocks = sum(
            len(replica.damaged_blocks) for replica in peer.replicas
        )
        # Some events may hit the same block twice; damaged blocks never
        # exceed the number of injected events.
        assert total_damaged_blocks <= model.events_injected
        assert model.events_injected > 0

    def test_no_damage_after_end_time(self):
        simulator = Simulator()
        rate = 50.0 / units.YEAR
        model = StorageFailureModel(
            simulator, random.Random(4), rate, end_time=units.MONTH
        )
        peer = FakePeer("p1")
        model.register_peer(peer)
        simulator.run(until=units.MONTH)
        injected_at_end = model.events_injected
        simulator.run(until=units.YEAR)
        assert model.events_injected == injected_at_end

    def test_damage_hook_reports_every_event(self):
        simulator = Simulator()
        rate = 30.0 / units.YEAR
        model = StorageFailureModel(simulator, random.Random(5), rate, end_time=units.YEAR)
        peer = FakePeer("p1")
        events = []
        model.set_damage_hook(lambda pid, au, block: events.append((pid, au, block)))
        model.register_peer(peer)
        simulator.run(until=units.YEAR)
        assert len(events) == model.events_injected
        assert all(pid == "p1" for pid, _, _ in events)

    def test_multiple_peers_fail_independently(self):
        simulator = Simulator()
        rate = 40.0 / units.YEAR
        model = StorageFailureModel(simulator, random.Random(6), rate, end_time=units.YEAR)
        peers = [FakePeer("p%d" % i) for i in range(3)]
        for peer in peers:
            model.register_peer(peer)
        simulator.run(until=units.YEAR)
        damaged_peers = [p for p in peers if p.replicas.damaged_count() > 0]
        assert len(damaged_peers) >= 2

    def test_stop_cancels_future_events(self):
        simulator = Simulator()
        rate = 100.0 / units.YEAR
        model = StorageFailureModel(simulator, random.Random(7), rate, end_time=units.YEAR)
        peer = FakePeer("p1")
        model.register_peer(peer)
        model.stop()
        simulator.run(until=units.YEAR)
        assert model.events_injected == 0
